"""Protocol tests for the ARP-Path bridge (paper §2.1).

These exercise the bridge as a black box inside small simulated
networks: locking, race filtering, path confirmation, loop-free
broadcast, hellos and the ARP proxy.
"""

import pytest

from repro.core.bridge import ArpPathBridge
from repro.core.table import EntryState
from repro.frames.ethernet import (ETHERTYPE_ARP, ETHERTYPE_ARPPATH,
                                   ETHERTYPE_IPV4)
from repro.netsim.engine import Simulator
from repro.topology import arppath, line, netfpga_demo, pair, ring
from repro.topology.builder import Network

from repro.testing import fast_config, ping_once


class TestDiscoveryLocking:
    def test_arp_locks_source_on_ingress(self, pair_net):
        h0 = pair_net.host("H0")
        h0.gratuitous_arp()
        pair_net.run(0.01)
        b0 = pair_net.bridge("B0")
        entry = b0.table.get(h0.mac, pair_net.sim.now)
        assert entry is not None
        assert entry.port.peer.node is h0

    def test_losing_race_copy_is_filtered(self, demo_net):
        """On the demo ring, the slow cross-link copy must be discarded."""
        demo_net.host("A").gratuitous_arp()
        demo_net.run(1.0)
        filtered = sum(b.apc.discovery_filtered
                       for b in demo_net.bridges.values())
        assert filtered > 0

    def test_each_bridge_locks_exactly_one_port(self, demo_net):
        a = demo_net.host("A")
        a.gratuitous_arp()
        demo_net.run(0.0006)  # mid-race
        for bridge in demo_net.bridges.values():
            entry = bridge.table.get(a.mac, demo_net.sim.now)
            assert entry is not None  # everyone heard the broadcast

    def test_broadcast_reaches_every_host_once(self, demo_net):
        a, b = demo_net.host("A"), demo_net.host("B")
        before = b.counters.arp_requests_received
        a.gratuitous_arp()
        demo_net.run(1.0)
        assert b.counters.arp_requests_received == before + 1

    def test_relock_after_guard_expiry(self, sim):
        """A re-broadcast after the race window can move the path."""
        config = fast_config()
        net = pair(sim, arppath(config))
        net.run(3.0)
        h0 = net.host("H0")
        h0.gratuitous_arp()
        net.run(1.0)  # guard (0.1s) long expired
        h0.gratuitous_arp()
        net.run(0.05)  # within the fresh lock window
        b1 = net.bridge("B1")
        entry = b1.table.get(h0.mac, sim.now)
        assert entry is not None and entry.is_locked


class TestPathConfirmation:
    def test_arp_reply_converts_locked_to_learnt(self, pair_net):
        h0, h1 = pair_net.host("H0"), pair_net.host("H1")
        h0.send_udp(h1.ip, 1, 2, b"")
        pair_net.run(1.0)
        for name in ("B0", "B1"):
            entry = pair_net.bridge(name).table.get(h0.mac,
                                                    pair_net.sim.now)
            assert entry is not None
            assert entry.state is EntryState.LEARNT

    def test_both_directions_learnt(self, pair_net):
        h0, h1 = pair_net.host("H0"), pair_net.host("H1")
        h0.send_udp(h1.ip, 1, 2, b"")
        pair_net.run(1.0)
        b0 = pair_net.bridge("B0")
        assert b0.table.get(h1.mac, pair_net.sim.now).state \
            is EntryState.LEARNT

    def test_path_is_symmetric(self, demo_net):
        """Frames B→A traverse the same bridges as A→B (paper §2.1.2)."""
        sim = demo_net.sim
        a, b = demo_net.host("A"), demo_net.host("B")
        assert ping_once(demo_net, "A", "B") is not None
        # Port toward B at NF1 and port toward A at NF3 are the path
        # ends; the middle bridge must have both on matching ports.
        nf2 = demo_net.bridge("NF2")
        entry_a = nf2.table.get(a.mac, sim.now)
        entry_b = nf2.table.get(b.mac, sim.now)
        if entry_a is not None and entry_b is not None:
            # NF2 is on the path: A toward NF1 side, B toward NF3 side.
            assert entry_a.port is not entry_b.port

    def test_unicast_refreshes_path(self, sim):
        config = fast_config(learnt_timeout=1.0)
        net = pair(sim, arppath(config))
        net.run(3.0)
        h0, h1 = net.host("H0"), net.host("H1")
        h0.send_udp(h1.ip, 1, 2, b"")
        net.run(0.5)
        # Keep traffic flowing at under the learnt timeout.
        for _ in range(4):
            h0.send_udp(h1.ip, 1, 2, b"keepalive")
            net.run(0.6)
        b0 = net.bridge("B0")
        assert b0.table.get(h0.mac, sim.now) is not None

    def test_minimum_latency_path_chosen(self, demo_net):
        """The headline claim on the demo topology."""
        rtt = ping_once(demo_net, "A", "B")
        # Ring path RTT is ~50us; the cross would be ~1000us.
        assert rtt is not None and rtt < 200e-6


class TestUnicastForwarding:
    def test_frame_to_bridge_mac_consumed(self, pair_net):
        from repro.frames.ethernet import EthernetFrame
        h0 = pair_net.host("H0")
        b0 = pair_net.bridge("B0")
        before = b0.counters.forwarded
        h0.port.send(EthernetFrame(dst=b0.mac, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        pair_net.run(0.1)
        assert b0.counters.forwarded == before

    def test_unicast_to_same_port_filtered(self, sim):
        """Destination already behind the ingress port: discard."""
        from repro.frames.ethernet import EthernetFrame
        from repro.frames.mac import mac_for_host
        net = Network(sim, bridge_factory=arppath())
        net.add_bridge("B0")
        h0 = net.add_host("H0")
        h1 = net.add_host("H1")
        net.attach("H0", "B0")
        net.attach("H1", "B0")
        net.start()
        net.run(2.0)
        b0 = net.bridge("B0")
        # Teach the bridge a ghost MAC behind H0's own port.
        ghost = mac_for_host(99)
        b0.table.learn(ghost, net.link_between("H0", "B0").port_b, sim.now)
        before = b0.counters.filtered
        h0.port.send(EthernetFrame(dst=ghost, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        assert b0.counters.filtered == before + 1

    def test_miss_without_repair_drops(self, sim):
        config = fast_config(repair_enabled=False)
        net = pair(sim, arppath(config))
        net.run(2.0)
        from repro.frames.ethernet import EthernetFrame
        from repro.frames.mac import mac_for_host
        h0 = net.host("H0")
        h0.port.send(EthernetFrame(dst=mac_for_host(55), src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.5)
        b0 = net.bridge("B0")
        assert b0.apc.drops_no_repair == 1


class TestLoopFreeBroadcast:
    def test_non_arp_broadcast_does_not_create_paths(self, pair_net):
        from repro.frames.ethernet import EthernetFrame
        from repro.frames.mac import BROADCAST
        h0 = pair_net.host("H0")
        h0.port.send(EthernetFrame(dst=BROADCAST, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b"x"))
        pair_net.run(0.5)
        b0 = pair_net.bridge("B0")
        assert b0.table.get(h0.mac, pair_net.sim.now) is None

    def test_broadcast_guard_filters_loops(self, sim):
        """IP broadcast on a ring terminates (no storm)."""
        net = ring(sim, arppath(), 4)
        net.run(3.0)
        sent_before = sim.tracer.frames_sent
        from repro.frames.ethernet import EthernetFrame
        from repro.frames.mac import BROADCAST
        h0 = net.host("H0")
        h0.port.send(EthernetFrame(dst=BROADCAST, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b"x"))
        net.run(2.0)
        delta = sim.tracer.frames_sent - sent_before
        # Hellos keep flowing; the broadcast itself adds a bounded
        # number of copies (well under a storm).
        assert delta < 100

    def test_guarded_source_accepted_on_same_port(self, pair_net):
        from repro.frames.ethernet import EthernetFrame
        from repro.frames.mac import BROADCAST
        h0 = pair_net.host("H0")
        for _ in range(2):
            h0.port.send(EthernetFrame(dst=BROADCAST, src=h0.mac,
                                       ethertype=ETHERTYPE_IPV4,
                                       payload=b"x"))
        pair_net.run(0.5)
        b0 = pair_net.bridge("B0")
        assert b0.apc.broadcast_guard_filtered == 0

    def test_existing_path_port_is_the_guard(self, pair_net):
        """Broadcasts from a host with an established path are accepted
        only on the path port."""
        h0, h1 = pair_net.host("H0"), pair_net.host("H1")
        h0.send_udp(h1.ip, 1, 2, b"")
        pair_net.run(1.0)
        from repro.frames.ethernet import EthernetFrame
        from repro.frames.mac import BROADCAST
        # Inject a spoofed broadcast with H0's MAC from H1's side.
        h1.port.send(EthernetFrame(dst=BROADCAST, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b"x"))
        pair_net.run(0.5)
        b1 = pair_net.bridge("B1")
        assert b1.apc.broadcast_guard_filtered == 1


class TestHellos:
    def test_fabric_ports_classified_bridge(self, demo_net):
        nf1 = demo_net.bridge("NF1")
        fabric_ports = [p for p in nf1.attached_ports
                        if p.peer.node.name != "A"]
        for port in fabric_ports:
            assert nf1.is_bridge_port(port)

    def test_host_ports_classified_host(self, demo_net):
        nf1 = demo_net.bridge("NF1")
        host_port = next(p for p in nf1.attached_ports
                         if p.peer.node.name == "A")
        assert nf1.is_host_port(host_port)

    def test_neighbor_identity_recorded(self, demo_net):
        nf1 = demo_net.bridge("NF1")
        nf2 = demo_net.bridge("NF2")
        port_to_nf2 = next(p for p in nf1.attached_ports
                           if p.peer.node is nf2)
        assert nf1.neighbors[port_to_nf2.index] == nf2.mac

    def test_classification_decays_after_carrier_loss(self, sim):
        config = fast_config()
        net = pair(sim, arppath(config))
        net.run(3.0)
        b0 = net.bridge("B0")
        fabric_port = next(p for p in b0.attached_ports
                           if p.peer.node.name == "B1")
        assert b0.is_bridge_port(fabric_port)
        net.link_between("B0", "B1").take_down()
        net.run(3.0)
        assert not b0.is_bridge_port(fabric_port)

    def test_static_roles_override(self, sim):
        config = fast_config(hello_enabled=False)
        net = pair(sim, arppath(config))
        net.mark_static_roles()
        net.run(1.0)
        b0 = net.bridge("B0")
        host_port = next(p for p in b0.attached_ports
                         if p.peer.node.name == "H0")
        fabric_port = next(p for p in b0.attached_ports
                           if p.peer.node.name == "B1")
        assert b0.is_host_port(host_port)
        assert b0.is_bridge_port(fabric_port)

    def test_hello_disabled_sends_none(self, sim):
        config = fast_config(hello_enabled=False)
        net = pair(sim, arppath(config))
        net.run(3.0)
        assert sim.tracer.count("sent", ETHERTYPE_ARPPATH) == 0

    def test_hosts_never_see_hellos_as_traffic(self, demo_net):
        """Transparency: host counters show no ARP-Path artefacts."""
        a = demo_net.host("A")
        assert a.counters.ip_received == 0
        assert a.counters.arp_requests_received == 0


class TestProxy:
    def _proxied_net(self, sim):
        config = fast_config(proxy_enabled=True, proxy_timeout=300.0)
        net = line(sim, arppath(config), 3)
        net.run(3.0)
        return net

    def test_second_resolution_suppressed(self, sim):
        net = self._proxied_net(sim)
        h0, h1 = net.host("H0"), net.host("H1")
        h0.send_udp(h1.ip, 1, 2, b"prime")  # populates proxy caches
        net.run(1.0)
        h0.arp_cache.flush()
        arp_sent_before = sim.tracer.count("sent", ETHERTYPE_ARP)
        h0.send_udp(h1.ip, 1, 2, b"again")
        net.run(1.0)
        arp_delta = sim.tracer.count("sent", ETHERTYPE_ARP) - arp_sent_before
        # Request + proxied reply on the host link only: no fabric flood.
        assert arp_delta <= 2
        edge = net.bridge("B0")
        assert edge.apc.proxy_suppressed == 1

    def test_suppressed_resolution_still_resolves(self, sim):
        net = self._proxied_net(sim)
        h0, h1 = net.host("H0"), net.host("H1")
        h0.send_udp(h1.ip, 1, 2, b"prime")
        net.run(1.0)
        h0.arp_cache.flush()
        got = []
        h1.bind_udp(2, lambda sip, sp, payload, pkt: got.append(payload))
        h0.send_udp(h1.ip, 1, 2, b"after-proxy")
        net.run(1.0)
        assert b"after-proxy" in got

    def test_proxy_disabled_never_answers(self, demo_net):
        for bridge in demo_net.bridges.values():
            assert bridge.proxy is None


class TestLifecycle:
    def test_stop_halts_hellos(self, sim):
        net = pair(sim, arppath(fast_config()))
        net.run(2.0)
        b0 = net.bridge("B0")
        b0.stop()
        sent_before = b0.apc.hellos_sent
        net.run(5.0)
        assert b0.apc.hellos_sent == sent_before

    def test_own_frames_ignored(self, pair_net):
        from repro.frames.ethernet import EthernetFrame
        b0 = pair_net.bridge("B0")
        received_before = b0.counters.flooded_frames
        frame = EthernetFrame(dst=pair_net.host("H0").mac, src=b0.mac,
                              ethertype=ETHERTYPE_IPV4, payload=b"")
        b0.handle_frame(b0.ports[0], frame)
        assert b0.counters.flooded_frames == received_before

    def test_repr_mentions_name(self, pair_net):
        assert "B0" in repr(pair_net.bridge("B0"))
