"""Tests for the network builder, factories and topology library."""

import pytest

from repro.core.bridge import ArpPathBridge
from repro.netsim.engine import Simulator
from repro.netsim.errors import AddressError, TopologyError
from repro.spb.bridge import SpbBridge
from repro.stp.bridge import StpBridge
from repro.switching.learning import LearningSwitch
from repro.topology import (arppath, factory_for, fat_tree, graph_of, grid,
                            learning, line, netfpga_demo, pair, random_graph,
                            ring, spb, stp)
from repro.topology.builder import Network


class TestBuilder:
    def test_duplicate_node_name_rejected(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_bridge("X")
        with pytest.raises(TopologyError):
            net.add_bridge("X")
        with pytest.raises(TopologyError):
            net.add_host("X")

    def test_no_factory_rejected(self, sim):
        net = Network(sim)
        with pytest.raises(TopologyError):
            net.add_bridge("B")

    def test_per_bridge_factory_override(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_bridge("AP")
        net.add_bridge("ST", factory=stp())
        assert isinstance(net.bridge("AP"), ArpPathBridge)
        assert isinstance(net.bridge("ST"), StpBridge)

    def test_unique_addresses(self, sim):
        net = Network(sim, bridge_factory=arppath())
        h0 = net.add_host("H0")
        h1 = net.add_host("H1")
        assert h0.mac != h1.mac and h0.ip != h1.ip

    def test_duplicate_ip_rejected(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_host("H0")
        with pytest.raises(AddressError):
            net.add_host("H1", ip=net.host("H0").ip)

    def test_duplicate_mac_rejected(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_host("H0")
        with pytest.raises(AddressError):
            net.add_host("H1", mac=net.host("H0").mac)

    def test_link_registry(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_bridges("A", "B")
        wire = net.link("A", "B", latency=5e-6)
        assert net.link_between("A", "B") is wire
        assert net.link_between("B", "A") is wire

    def test_duplicate_link_name_rejected(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_bridges("A", "B")
        net.link("A", "B")
        with pytest.raises(TopologyError):
            net.link("A", "B")

    def test_unknown_link_lookup(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_bridges("A", "B")
        with pytest.raises(TopologyError):
            net.link_between("A", "B")

    def test_attach_validates_roles(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_bridge("B")
        net.add_host("H")
        with pytest.raises(TopologyError):
            net.attach("B", "H")  # reversed arguments

    def test_bridge_for_host(self, sim):
        net = pair(sim, arppath())
        assert net.bridge_for_host("H0").name == "B0"

    def test_fabric_links_excludes_host_links(self, sim):
        net = pair(sim, arppath())
        names = {link.name for link in net.fabric_links()}
        assert names == {"B0-B1"}

    def test_start_is_idempotent(self, sim):
        net = pair(sim, arppath())
        net.start()
        net.start()
        assert all(b.started for b in net.bridges.values())

    def test_node_lookup_errors(self, sim):
        net = Network(sim, bridge_factory=arppath())
        with pytest.raises(TopologyError):
            net.node("ghost")
        with pytest.raises(TopologyError):
            net.host("ghost")
        with pytest.raises(TopologyError):
            net.bridge("ghost")

    def test_mark_static_roles(self, sim):
        net = pair(sim, arppath())
        marked = net.mark_static_roles()
        assert marked == 4  # 2 host ports + both ends of B0-B1


class TestFactories:
    def test_factory_for_names(self, sim):
        for name, kind in [("arppath", ArpPathBridge), ("stp", StpBridge),
                           ("spb", SpbBridge),
                           ("learning", LearningSwitch)]:
            factory = factory_for(name)
            bridge = factory(sim, "X" + name,
                             __import__("repro.frames.mac",
                                        fromlist=["mac_for_bridge"]
                                        ).mac_for_bridge(200 + len(name)))
            assert isinstance(bridge, kind)

    def test_factory_for_unknown(self):
        with pytest.raises(ValueError):
            factory_for("token-ring")


class TestLibrary:
    def test_netfpga_demo_shape(self, sim):
        net = netfpga_demo(sim, arppath())
        assert set(net.bridges) == {"NF1", "NF2", "NF3", "NF4"}
        assert set(net.hosts) == {"A", "B"}
        assert len(net.fabric_links()) == 5  # ring + cross

    def test_netfpga_demo_cross_is_slow(self, sim):
        net = netfpga_demo(sim, arppath())
        cross = net.link_between("NF1", "NF3")
        ring_link = net.link_between("NF1", "NF2")
        assert cross.latency > ring_link.latency

    def test_line_shape(self, sim):
        net = line(sim, arppath(), 5)
        assert len(net.bridges) == 5
        assert len(net.fabric_links()) == 4

    def test_line_validation(self, sim):
        with pytest.raises(TopologyError):
            line(sim, arppath(), 0)

    def test_ring_shape(self, sim):
        net = ring(sim, arppath(), 6, hosts_per_bridge=2)
        assert len(net.fabric_links()) == 6
        assert len(net.hosts) == 12

    def test_ring_validation(self, sim):
        with pytest.raises(TopologyError):
            ring(sim, arppath(), 2)
        with pytest.raises(TopologyError):
            ring(sim, arppath(), 4, latencies=[1e-6])

    def test_ring_custom_latencies(self, sim):
        latencies = [1e-6, 2e-6, 3e-6]
        net = ring(sim, arppath(), 3, latencies=latencies)
        measured = sorted(link.latency for link in net.fabric_links())
        assert measured == latencies

    def test_grid_shape(self, sim):
        net = grid(sim, arppath(), 3, 4)
        assert len(net.bridges) == 12
        # Edges: 3*(4-1) horizontal rows + (3-1)*4 vertical = 9+8
        assert len(net.fabric_links()) == 17

    def test_grid_jitter_deterministic(self):
        net_a = grid(Simulator(seed=0), arppath(), 2, 2,
                     latency_jitter=5e-6, seed=9)
        net_b = grid(Simulator(seed=0), arppath(), 2, 2,
                     latency_jitter=5e-6, seed=9)
        lat_a = [l.latency for l in net_a.fabric_links()]
        lat_b = [l.latency for l in net_b.fabric_links()]
        assert lat_a == lat_b

    def test_grid_validation(self, sim):
        with pytest.raises(TopologyError):
            grid(sim, arppath(), 0, 3)

    def test_fat_tree_shape(self, sim):
        net = fat_tree(sim, arppath(), pods=4, hosts_per_edge=2)
        assert len([n for n in net.bridges if n.startswith("S")]) == 2
        assert len([n for n in net.bridges if n.startswith("L")]) == 4
        assert len(net.fabric_links()) == 8
        assert len(net.hosts) == 8

    def test_random_graph_connected(self):
        import networkx as nx
        for seed in range(5):
            net = random_graph(Simulator(seed=0), arppath(), 12,
                               seed=seed, hosts=4)
            graph = graph_of(net, fabric_only=True)
            assert nx.is_connected(graph)

    def test_random_graph_deterministic(self):
        net_a = random_graph(Simulator(seed=0), arppath(), 10, seed=3)
        net_b = random_graph(Simulator(seed=0), arppath(), 10, seed=3)
        assert set(net_a.links) == set(net_b.links)
        lat_a = {n: l.latency for n, l in net_a.links.items()}
        lat_b = {n: l.latency for n, l in net_b.links.items()}
        assert lat_a == lat_b

    def test_random_graph_validation(self, sim):
        with pytest.raises(TopologyError):
            random_graph(sim, arppath(), 1)
        with pytest.raises(TopologyError):
            random_graph(sim, arppath(), 3, hosts=5)


class TestGraphOf:
    def test_latency_weights(self, sim):
        net = netfpga_demo(sim, arppath())
        graph = graph_of(net)
        assert graph["NF1"]["NF3"]["latency"] \
            == net.link_between("NF1", "NF3").latency

    def test_down_links_excluded(self, sim):
        net = netfpga_demo(sim, arppath())
        net.link_between("NF1", "NF3").take_down()
        graph = graph_of(net)
        assert "NF3" not in graph["NF1"]

    def test_fabric_only_excludes_hosts(self, sim):
        net = netfpga_demo(sim, arppath())
        graph = graph_of(net, fabric_only=True)
        assert "A" not in graph.nodes
