"""SQLite job/result store: CRUD, guards, durability, recovery."""

import threading

import pytest

from repro.server import store as store_mod
from repro.server.store import Store


@pytest.fixture
def store():
    s = Store(":memory:")
    yield s
    s.close()


SPEC = {"scenario": "ping", "seeds": [0], "set": {}, "jobs": 1,
        "timeout": None}


class TestJobLifecycle:
    def test_create_starts_queued(self, store):
        job_id = store.create_job(SPEC, cells_total=4)
        job = store.get_job(job_id)
        assert job["state"] == store_mod.QUEUED
        assert job["spec"] == SPEC
        assert job["cells_total"] == 4
        assert job["cells_done"] == 0
        assert job["record_count"] == 0
        assert job["error"] is None

    def test_ids_are_sequential(self, store):
        assert store.create_job(SPEC, 1) == 1
        assert store.create_job(SPEC, 1) == 2

    def test_get_missing_job_is_none(self, store):
        assert store.get_job(99) is None

    def test_set_running_is_guarded(self, store):
        job_id = store.create_job(SPEC, 1)
        assert store.set_running(job_id, cells_total=1) is True
        # second claim loses the race
        assert store.set_running(job_id, cells_total=1) is False
        assert store.get_job(job_id)["state"] == store_mod.RUNNING

    def test_cannot_start_a_terminal_job(self, store):
        job_id = store.create_job(SPEC, 1)
        store.finish_job(job_id, store_mod.CANCELLED)
        assert store.set_running(job_id, cells_total=1) is False

    def test_finish_is_write_once(self, store):
        job_id = store.create_job(SPEC, 1)
        store.set_running(job_id, cells_total=1)
        store.finish_job(job_id, store_mod.COMPLETED)
        # a late cancel must not overwrite the completed state
        store.finish_job(job_id, store_mod.CANCELLED)
        assert store.get_job(job_id)["state"] == store_mod.COMPLETED

    def test_finish_rejects_non_terminal_state(self, store):
        job_id = store.create_job(SPEC, 1)
        with pytest.raises(store_mod.StoreError):
            store.finish_job(job_id, store_mod.RUNNING)

    def test_finish_records_error_text(self, store):
        job_id = store.create_job(SPEC, 1)
        store.set_running(job_id, cells_total=1)
        store.finish_job(job_id, store_mod.FAILED, error="boom\ntrace")
        job = store.get_job(job_id)
        assert job["state"] == store_mod.FAILED
        assert job["error"] == "boom\ntrace"

    def test_progress_counter(self, store):
        job_id = store.create_job(SPEC, 3)
        store.set_progress(job_id, 2)
        assert store.get_job(job_id)["cells_done"] == 2

    def test_list_jobs_newest_first_with_filters(self, store):
        first = store.create_job(SPEC, 1)
        second = store.create_job(SPEC, 1)
        store.set_running(first, cells_total=1)
        store.finish_job(first, store_mod.COMPLETED)
        assert [j["id"] for j in store.list_jobs()] == [second, first]
        done = store.list_jobs(state=store_mod.COMPLETED)
        assert [j["id"] for j in done] == [first]
        assert len(store.list_jobs(limit=1)) == 1

    def test_job_counts_zero_filled(self, store):
        counts = store.job_counts()
        assert set(counts) == set(store_mod.STATES)
        assert all(n == 0 for n in counts.values())
        store.create_job(SPEC, 1)
        assert store.job_counts()[store_mod.QUEUED] == 1


class TestRecords:
    def test_append_and_fetch_preserve_order(self, store):
        job_id = store.create_job(SPEC, 1)
        store.append_records(job_id, ['{"a":1}', '{"b":2}'])
        store.append_records(job_id, ['{"c":3}'])
        assert store.fetch_records(job_id) == \
            ['{"a":1}', '{"b":2}', '{"c":3}']
        assert store.record_count(job_id) == 3

    def test_offset_and_limit(self, store):
        job_id = store.create_job(SPEC, 1)
        store.append_records(job_id, [f'{{"i":{i}}}' for i in range(5)])
        assert store.fetch_records(job_id, offset=3) == \
            ['{"i":3}', '{"i":4}']
        assert store.fetch_records(job_id, offset=1, limit=2) == \
            ['{"i":1}', '{"i":2}']
        assert store.fetch_records(job_id, offset=99) == []

    def test_records_are_per_job(self, store):
        a = store.create_job(SPEC, 1)
        b = store.create_job(SPEC, 1)
        store.append_records(a, ['{"job":"a"}'])
        store.append_records(b, ['{"job":"b"}'])
        assert store.fetch_records(a) == ['{"job":"a"}']
        assert store.fetch_records(b) == ['{"job":"b"}']


class TestSummary:
    def test_summary_round_trips(self, store):
        job_id = store.create_job(SPEC, 1)
        assert store.get_summary(job_id) is None
        payload = {"summary": [{"scenario": "ping", "mean": 1.0}],
                   "errors": []}
        store.set_summary(job_id, payload)
        assert store.get_summary(job_id) == payload


class TestDurability:
    def test_everything_survives_reopen(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        first = Store(db)
        job_id = first.create_job(SPEC, 2)
        first.set_running(job_id, cells_total=2)
        first.append_records(job_id, ['{"seed":0}', '{"seed":1}'])
        first.set_progress(job_id, 2)
        first.finish_job(job_id, store_mod.COMPLETED)
        first.set_summary(job_id, {"summary": []})
        first.close()

        second = Store(db)
        try:
            job = second.get_job(job_id)
            assert job["state"] == store_mod.COMPLETED
            assert job["cells_done"] == 2
            assert job["record_count"] == 2
            assert second.fetch_records(job_id) == \
                ['{"seed":0}', '{"seed":1}']
            assert second.get_summary(job_id) == {"summary": []}
        finally:
            second.close()

    def test_recover_resumes_running_and_requeues_queued(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        first = Store(db)
        interrupted = first.create_job(SPEC, 2)
        first.set_running(interrupted, cells_total=2)
        first.append_records(interrupted, ['{"seed":0}'], cell_index=0,
                             cells_flushed=1)
        waiting = first.create_job(SPEC, 1)
        first.close()  # daemon dies here

        second = Store(db)
        try:
            outcome = second.recover()
            assert outcome["requeued"] == [interrupted, waiting]
            assert outcome["resumed"] == [interrupted]
            job = second.get_job(interrupted)
            # back in the queue with the checkpoint + records intact:
            # the manager re-runs it *from* cell 1, not from scratch
            assert job["state"] == store_mod.QUEUED
            assert job["error"] is None
            assert job["cells_flushed"] == 1
            assert job["resumes"] == 1
            assert second.fetch_records(interrupted) == ['{"seed":0}']
        finally:
            second.close()

    def test_recover_orphan_with_zero_flushed_records(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        first = Store(db)
        job_id = first.create_job(SPEC, 2)
        first.set_running(job_id, cells_total=2)
        first.close()  # died before flushing anything

        second = Store(db)
        try:
            outcome = second.recover()
            assert outcome["resumed"] == [job_id]
            job = second.get_job(job_id)
            assert job["state"] == store_mod.QUEUED
            assert job["cells_flushed"] == 0
            assert second.fetch_records(job_id) == []
        finally:
            second.close()

    def test_recover_drops_records_beyond_the_checkpoint(self, tmp_path):
        # Pre-checkpoint databases (or a hypothetical torn write) can
        # hold records the checkpoint does not vouch for; recovery must
        # drop them so the stored prefix stays trustworthy.
        db = str(tmp_path / "jobs.db")
        first = Store(db)
        job_id = first.create_job(SPEC, 2)
        first.set_running(job_id, cells_total=2)
        first.append_records(job_id, ['{"seed":0}'], cell_index=0,
                             cells_flushed=1)
        first.append_records(job_id, ['{"legacy":1}'])  # untagged, no ckpt
        first.close()

        second = Store(db)
        try:
            second.recover()
            assert second.fetch_records(job_id) == ['{"seed":0}']
        finally:
            second.close()

    def test_recover_twice_is_idempotent(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        first = Store(db)
        job_id = first.create_job(SPEC, 2)
        first.set_running(job_id, cells_total=2)
        first.append_records(job_id, ['{"seed":0}'], cell_index=0,
                             cells_flushed=1)
        first.close()

        second = Store(db)
        try:
            assert second.recover()["resumed"] == [job_id]
            again = second.recover()
            assert again["resumed"] == []
            assert again["requeued"] == [job_id]
            job = second.get_job(job_id)
            assert job["resumes"] == 1  # not double-counted
            assert second.fetch_records(job_id) == ['{"seed":0}']
        finally:
            second.close()

    def test_cancel_racing_recovery_wins(self, tmp_path):
        # A client cancel that lands after recover() re-queued the job
        # must stick: finish_job flips queued -> cancelled, and the
        # worker's set_running guard then refuses to start it.
        db = str(tmp_path / "jobs.db")
        first = Store(db)
        job_id = first.create_job(SPEC, 2)
        first.set_running(job_id, cells_total=2)
        first.close()

        second = Store(db)
        try:
            assert second.recover()["resumed"] == [job_id]
            second.finish_job(job_id, store_mod.CANCELLED,
                              error="cancelled before start")
            assert second.get_job(job_id)["state"] == store_mod.CANCELLED
            assert second.set_running(job_id, cells_total=2) is False
        finally:
            second.close()


class TestCheckpoint:
    def test_checkpoint_advances_with_the_append(self, store):
        job_id = store.create_job(SPEC, 2)
        store.append_records(job_id, ['{"a":1}'], cell_index=0,
                             cells_flushed=1)
        job = store.get_job(job_id)
        assert job["cells_flushed"] == 1
        assert job["record_count"] == 1

    def test_empty_cell_still_advances_checkpoint(self, store):
        job_id = store.create_job(SPEC, 2)
        store.append_records(job_id, [], cell_index=0, cells_flushed=1)
        job = store.get_job(job_id)
        assert job["cells_flushed"] == 1
        assert job["record_count"] == 0

    def test_write_fault_rolls_back_records_and_checkpoint(self, store):
        job_id = store.create_job(SPEC, 2)
        store.append_records(job_id, ['{"a":1}'], cell_index=0,
                             cells_flushed=1)

        def explode(jid, lines):
            raise OSError("chaos: disk on fire")

        store.write_fault = explode
        with pytest.raises(OSError):
            store.append_records(job_id, ['{"b":2}'], cell_index=1,
                                 cells_flushed=2)
        store.write_fault = None
        # the failed transaction left no trace — retrying it appends
        # the identical batch at the identical seq
        job = store.get_job(job_id)
        assert job["cells_flushed"] == 1
        assert store.fetch_records(job_id) == ['{"a":1}']
        store.append_records(job_id, ['{"b":2}'], cell_index=1,
                             cells_flushed=2)
        assert store.fetch_records(job_id) == ['{"a":1}', '{"b":2}']
        assert store.get_job(job_id)["cells_flushed"] == 2

    def test_fetch_cell_records_pairs_rows_with_cells(self, store):
        job_id = store.create_job(SPEC, 3)
        store.append_records(job_id, ['{"a":1}', '{"a":2}'],
                             cell_index=0, cells_flushed=1)
        store.append_records(job_id, [], cell_index=1, cells_flushed=2)
        store.append_records(job_id, ['{"c":1}'], cell_index=2,
                             cells_flushed=3)
        assert store.fetch_cell_records(job_id) == [
            (0, '{"a":1}'), (0, '{"a":2}'), (2, '{"c":1}')]


class TestConcurrency:
    def test_parallel_appends_do_not_interleave_within_a_batch(self,
                                                               store):
        job_id = store.create_job(SPEC, 1)
        batches = [[f'{{"w":{w},"i":{i}}}' for i in range(20)]
                   for w in range(4)]
        threads = [threading.Thread(
            target=store.append_records, args=(job_id, batch))
            for batch in batches]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = store.fetch_records(job_id)
        assert len(lines) == 80
        # each batch must occupy one contiguous seq range
        import json
        owners = [json.loads(line)["w"] for line in lines]
        for w in range(4):
            span = [i for i, owner in enumerate(owners) if owner == w]
            assert span == list(range(span[0], span[0] + 20))
