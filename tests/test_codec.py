"""Round-trip tests for the wire-format codec (hypothesis-heavy)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frames import codec
from repro.frames.arp import ArpPacket, OP_REPLY, OP_REQUEST
from repro.frames.codec import CodecError
from repro.frames.control import (ArpPathControl, OP_HELLO, OP_PATH_FAIL,
                                  OP_PATH_REPLY, OP_PATH_REQUEST)
from repro.frames.ethernet import (ETH_MIN_FRAME, ETHERTYPE_ARP,
                                   ETHERTYPE_ARPPATH, ETHERTYPE_IPV4,
                                   EthernetFrame)
from repro.frames.icmp import IcmpEcho, TYPE_ECHO_REPLY, TYPE_ECHO_REQUEST
from repro.frames.ipv4 import IPv4Address, IPv4Packet, PROTO_ICMP, PROTO_UDP
from repro.frames.mac import MAC
from repro.frames.udp import UdpDatagram

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MAC)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)
ports = st.integers(min_value=0, max_value=0xFFFF)
short_payloads = st.binary(max_size=64)


class TestArpCodec:
    @given(op=st.sampled_from([OP_REQUEST, OP_REPLY]), sha=macs, spa=ips,
           tha=macs, tpa=ips)
    def test_round_trip(self, op, sha, spa, tha, tpa):
        original = ArpPacket(op=op, sha=sha, spa=spa, tha=tha, tpa=tpa)
        assert codec.decode_arp(codec.encode_arp(original)) == original

    def test_encoded_length(self):
        packet = ArpPacket(op=OP_REQUEST, sha=MAC(1), spa=IPv4Address(1),
                           tha=MAC(0), tpa=IPv4Address(2))
        assert len(codec.encode_arp(packet)) == 28

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            codec.decode_arp(b"\x00" * 10)

    def test_bad_htype_rejected(self):
        raw = bytearray(codec.encode_arp(
            ArpPacket(op=OP_REQUEST, sha=MAC(1), spa=IPv4Address(1),
                      tha=MAC(0), tpa=IPv4Address(2))))
        raw[0] = 0xFF
        with pytest.raises(CodecError):
            codec.decode_arp(bytes(raw))


class TestControlCodec:
    @given(op=st.sampled_from([OP_HELLO, OP_PATH_REQUEST, OP_PATH_REPLY,
                               OP_PATH_FAIL]),
           origin=macs, source=macs, target=macs,
           seq=st.integers(min_value=0, max_value=(1 << 32) - 1),
           ttl=st.integers(min_value=0, max_value=0xFFFF))
    def test_round_trip(self, op, origin, source, target, seq, ttl):
        original = ArpPathControl(op=op, origin=origin, source=source,
                                  target=target, seq=seq, ttl=ttl)
        decoded = codec.decode_control(codec.encode_control(original))
        assert decoded == original

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            codec.decode_control(b"\x00\x01")

    def test_unknown_op_rejected(self):
        raw = bytearray(codec.encode_control(
            ArpPathControl(op=OP_HELLO, origin=MAC(1), source=MAC(1),
                           target=MAC(1))))
        raw[1] = 0x63
        with pytest.raises(CodecError):
            codec.decode_control(bytes(raw))


class TestIcmpCodec:
    @given(icmp_type=st.sampled_from([TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY]),
           ident=ports, seq=ports, payload=short_payloads)
    def test_round_trip(self, icmp_type, ident, seq, payload):
        original = IcmpEcho(icmp_type=icmp_type, ident=ident, seq=seq,
                            payload=payload)
        assert codec.decode_icmp(codec.encode_icmp(original)) == original

    def test_checksum_is_valid(self):
        echo = IcmpEcho(icmp_type=TYPE_ECHO_REQUEST, ident=1, seq=1,
                        payload=b"ab")
        raw = codec.encode_icmp(echo)
        assert codec._inet_checksum(raw) == 0

    def test_unsupported_type_rejected(self):
        raw = bytearray(codec.encode_icmp(
            IcmpEcho(icmp_type=TYPE_ECHO_REQUEST, ident=0, seq=0)))
        raw[0] = 13
        with pytest.raises(CodecError):
            codec.decode_icmp(bytes(raw))


class TestUdpCodec:
    @given(sport=ports, dport=ports, payload=short_payloads)
    def test_round_trip(self, sport, dport, payload):
        original = UdpDatagram(sport=sport, dport=dport, payload=payload)
        decoded = codec.decode_udp(codec.encode_udp(original))
        assert (decoded.sport, decoded.dport) == (sport, dport)
        assert decoded.payload == payload

    def test_length_field_respected(self):
        raw = codec.encode_udp(UdpDatagram(sport=1, dport=2, payload=b"abc"))
        decoded = codec.decode_udp(raw + b"\x00" * 10)  # trailing padding
        assert decoded.payload == b"abc"

    def test_bad_length_rejected(self):
        raw = bytearray(codec.encode_udp(UdpDatagram(sport=1, dport=2)))
        raw[4:6] = (2).to_bytes(2, "big")  # length < header
        with pytest.raises(CodecError):
            codec.decode_udp(bytes(raw))


class TestIpv4Codec:
    @given(src=ips, dst=ips, ttl=st.integers(min_value=0, max_value=255),
           ident=ports, sport=ports, dport=ports, payload=short_payloads)
    def test_udp_round_trip(self, src, dst, ttl, ident, sport, dport,
                            payload):
        original = IPv4Packet(src=src, dst=dst, proto=PROTO_UDP,
                              payload=UdpDatagram(sport=sport, dport=dport,
                                                  payload=payload),
                              ttl=ttl, ident=ident)
        decoded = codec.decode_ipv4(codec.encode_ipv4(original))
        assert (decoded.src, decoded.dst, decoded.ttl,
                decoded.ident) == (src, dst, ttl, ident)
        assert decoded.payload.payload == payload

    @given(src=ips, dst=ips, ident=ports, seq=ports,
           payload=short_payloads)
    def test_icmp_round_trip(self, src, dst, ident, seq, payload):
        original = IPv4Packet(src=src, dst=dst, proto=PROTO_ICMP,
                              payload=IcmpEcho(icmp_type=TYPE_ECHO_REQUEST,
                                               ident=ident, seq=seq,
                                               payload=payload))
        decoded = codec.decode_ipv4(codec.encode_ipv4(original))
        assert decoded.payload == original.payload

    def test_opaque_proto_stays_bytes(self):
        original = IPv4Packet(src=IPv4Address(1), dst=IPv4Address(2),
                              proto=89, payload=b"ospf-ish")
        decoded = codec.decode_ipv4(codec.encode_ipv4(original))
        assert decoded.payload == b"ospf-ish"

    def test_header_checksum_valid(self):
        raw = codec.encode_ipv4(IPv4Packet(src=IPv4Address(1),
                                           dst=IPv4Address(2),
                                           proto=PROTO_UDP,
                                           payload=UdpDatagram(1, 2)))
        assert codec._inet_checksum(raw[:20]) == 0

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            codec.decode_ipv4(b"\x45" + b"\x00" * 5)

    def test_bad_version_rejected(self):
        raw = bytearray(codec.encode_ipv4(
            IPv4Packet(src=IPv4Address(1), dst=IPv4Address(2),
                       proto=PROTO_UDP, payload=UdpDatagram(1, 2))))
        raw[0] = 0x60
        with pytest.raises(CodecError):
            codec.decode_ipv4(bytes(raw))


class TestFrameCodec:
    @given(dst=macs, src=macs)
    def test_arp_frame_round_trip(self, dst, src):
        packet = ArpPacket(op=OP_REQUEST, sha=src, spa=IPv4Address(1),
                           tha=MAC(0), tpa=IPv4Address(2))
        frame = EthernetFrame(dst=dst, src=src, ethertype=ETHERTYPE_ARP,
                              payload=packet)
        decoded = codec.decode_frame(codec.encode_frame(frame))
        assert (decoded.dst, decoded.src) == (dst, src)
        assert decoded.payload == packet

    def test_minimum_frame_is_padded(self):
        frame = EthernetFrame(dst=MAC(1), src=MAC(2),
                              ethertype=ETHERTYPE_IPV4, payload=b"")
        raw = codec.encode_frame(frame)
        assert len(raw) == ETH_MIN_FRAME - 4  # FCS is virtual

    def test_control_frame_round_trip(self):
        msg = ArpPathControl(op=OP_PATH_REQUEST, origin=MAC(9),
                             source=MAC(1), target=MAC(2), seq=4, ttl=17)
        frame = EthernetFrame(dst=MAC(0xFFFFFFFFFFFF), src=MAC(1),
                              ethertype=ETHERTYPE_ARPPATH, payload=msg)
        decoded = codec.decode_frame(codec.encode_frame(frame))
        assert decoded.payload == msg

    def test_unknown_ethertype_opaque(self):
        frame = EthernetFrame(dst=MAC(1), src=MAC(2), ethertype=0x1234,
                              payload=b"who knows")
        decoded = codec.decode_frame(codec.encode_frame(frame))
        assert decoded.ethertype == 0x1234
        assert decoded.payload.startswith(b"who knows")

    def test_short_frame_rejected(self):
        with pytest.raises(CodecError):
            codec.decode_frame(b"\x00" * 8)

    def test_register_custom_ethertype(self):
        marker = 0x9999
        codec.register_ethertype(marker, lambda obj: b"\xAB",
                                 lambda raw: "decoded!")
        frame = EthernetFrame(dst=MAC(1), src=MAC(2), ethertype=marker,
                              payload=object.__new__(object))
        # Encoding an arbitrary object is possible once registered.
        raw = codec.encode_frame(frame)
        assert codec.decode_frame(raw).payload == "decoded!"
        del codec._ethertype_codecs[marker]
