"""Tests for the registry-generated command-line interface.

The per-subcommand execution tests are parametrized over the scenario
registry: every registered scenario runs at its declared smallest
parameters through the real CLI entry point. Adding a scenario to the
registry automatically adds it here.
"""

import pytest

from repro.cli import build_parser, main
from repro.experiments import registry


def _smoke_argv(scenario: registry.Scenario) -> list:
    """CLI argv for the scenario's smallest-parameters run."""
    argv = [scenario.name]
    for name, value in scenario.smoke.items():
        argv.append(scenario.param(name).flag)
        values = value if isinstance(value, list) else [value]
        argv.extend(str(v) for v in values)
    return argv


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_scenarios_have_subcommands(self):
        parser = build_parser()
        subactions = next(a for a in parser._actions
                          if hasattr(a, "choices") and a.choices)
        assert set(subactions.choices) == \
            set(registry.names()) | {"sweep", "serve"}

    def test_eight_experiments_registered(self):
        assert set(registry.names()) >= {
            "fig2", "fig3", "stretch", "loopfree", "proxy", "loadbalance",
            "ablations", "occupancy"}

    def test_fig2_defaults_come_from_registry(self):
        args = build_parser().parse_args(["fig2"])
        assert args.probes is None  # None = use the registry default
        assert registry.get("fig2").bind()["probes"] == 20

    def test_ping_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ping", "--protocol", "trill"])

    def test_ping_rejects_learning_switch(self):
        """A learning switch storms on the loopy demo wiring; the CLI
        refuses to build that footgun."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ping", "--protocol", "learning"])

    def test_stretch_multiple_seeds(self):
        args = build_parser().parse_args(["stretch", "--seeds", "1", "2"])
        assert args.seeds == [1, 2]


class TestSeedUniformity:
    """Regression: every subcommand accepts --seed N and --seeds N M."""

    @pytest.mark.parametrize("name", registry.names())
    def test_seed_and_seeds_accepted(self, name):
        parser = build_parser()
        single = parser.parse_args([name, "--seed", "7"])
        multi = parser.parse_args([name, "--seeds", "7", "8"])
        assert single.seed == 7
        assert multi.seeds == [7, 8]

    @pytest.mark.parametrize("name", registry.names())
    def test_seed_alias_matches_seeds(self, name):
        from repro.cli import _collect_overrides
        parser = build_parser()
        scenario = registry.get(name)
        via_alias = _collect_overrides(
            parser.parse_args([name, "--seed", "7"]), scenario)
        via_list = _collect_overrides(
            parser.parse_args([name, "--seeds", "7"]), scenario)
        assert via_alias["seeds"] == via_list["seeds"] == [7]

    @pytest.mark.parametrize("name", registry.names())
    def test_both_forms_rejected_together(self, name):
        parser = build_parser()
        scenario = registry.get(name)
        from repro.cli import _collect_overrides
        with pytest.raises(SystemExit):
            _collect_overrides(
                parser.parse_args([name, "--seed", "1", "--seeds", "2"]),
                scenario)


class TestExecution:
    """Every registered scenario runs through the CLI entry point at
    its smallest parameters: exit code 0 and a non-empty report."""

    @pytest.mark.parametrize("name", registry.names())
    def test_scenario_smoke(self, name, capsys):
        scenario = registry.get(name)
        code = main(_smoke_argv(scenario))
        out = capsys.readouterr().out
        assert code == 0
        assert out.strip()

    def test_ping_reports_demo_path(self, capsys):
        code = main(["ping", "--protocol", "arppath", "--count", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rtt:" in out and "NF1" in out


class TestSweepCommand:
    def test_sweep_tiny_grid(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(["sweep", "proxy", "--seeds", "0", "1",
                     "--set", "rows=2", "--set", "cols=2",
                     "--set", "rounds=1",
                     "--json", str(json_path), "--csv", str(csv_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep — proxy" in out
        assert json_path.exists() and csv_path.exists()

    def test_sweep_jsonl_is_canonical(self, capsys, tmp_path):
        # --jsonl writes the serve daemon's canonical record encoding:
        # sorted keys, compact separators, one row per line
        jsonl_path = tmp_path / "rows.jsonl"
        code = main(["sweep", "proxy", "--seeds", "0",
                     "--set", "rows=2", "--set", "cols=2",
                     "--set", "rounds=1", "--jsonl", str(jsonl_path)])
        capsys.readouterr()
        assert code == 0
        import json
        from repro.metrics.report import record_line
        lines = jsonl_path.read_text().splitlines()
        assert lines
        for line in lines:
            assert record_line(json.loads(line)) == line

    def test_sweep_unknown_scenario_exits_cleanly(self):
        with pytest.raises(SystemExit, match="nonesuch"):
            main(["sweep", "nonesuch"])

    def test_sweep_unknown_axis(self):
        with pytest.raises(SystemExit):
            main(["sweep", "proxy", "--set", "bogus=1,2"])
