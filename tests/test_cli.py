"""Tests for the command-line interface (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        subactions = next(a for a in parser._actions
                          if hasattr(a, "choices") and a.choices)
        assert set(subactions.choices) == {
            "fig2", "fig3", "stretch", "loopfree", "proxy", "loadbalance",
            "ablations", "ping"}

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.probes == 20 and args.seed == 0

    def test_ping_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ping", "--protocol", "trill"])

    def test_ping_rejects_learning_switch(self):
        """A learning switch storms on the loopy demo wiring; the CLI
        refuses to build that footgun."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ping", "--protocol", "learning"])

    def test_stretch_multiple_seeds(self):
        args = build_parser().parse_args(["stretch", "--seeds", "1", "2"])
        assert args.seeds == [1, 2]


class TestExecution:
    def test_ping_arppath(self, capsys):
        code = main(["ping", "--protocol", "arppath", "--count", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "rtt:" in out and "NF1" in out

    def test_proxy_small(self, capsys):
        code = main(["proxy", "--rows", "2", "--cols", "2",
                     "--rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "EXP-A1" in out
