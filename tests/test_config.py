"""Tests for ArpPathConfig validation."""

import pytest

from repro.core.config import ArpPathConfig, DEFAULT_CONFIG


class TestDefaults:
    def test_default_is_valid(self):
        assert DEFAULT_CONFIG.lock_timeout > 0

    def test_default_proxy_off(self):
        assert not DEFAULT_CONFIG.proxy_enabled

    def test_default_repair_on(self):
        assert DEFAULT_CONFIG.repair_enabled

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.lock_timeout = 5.0


class TestValidation:
    def test_rejects_zero_lock_timeout(self):
        with pytest.raises(ValueError):
            ArpPathConfig(lock_timeout=0)

    def test_rejects_negative_learnt_timeout(self):
        with pytest.raises(ValueError):
            ArpPathConfig(learnt_timeout=-1)

    def test_rejects_zero_guard_timeout(self):
        with pytest.raises(ValueError):
            ArpPathConfig(guard_timeout=0)

    def test_rejects_zero_hello_interval(self):
        with pytest.raises(ValueError):
            ArpPathConfig(hello_interval=0)

    def test_rejects_hold_below_interval(self):
        with pytest.raises(ValueError):
            ArpPathConfig(hello_interval=2.0, hello_hold=1.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ArpPathConfig(repair_retries=-1)

    def test_rejects_zero_retry_timeout(self):
        with pytest.raises(ValueError):
            ArpPathConfig(repair_retry_timeout=0)

    def test_rejects_negative_buffer(self):
        with pytest.raises(ValueError):
            ArpPathConfig(repair_buffer_size=-1)

    def test_rejects_zero_ttl(self):
        with pytest.raises(ValueError):
            ArpPathConfig(control_ttl=0)

    def test_zero_buffer_allowed(self):
        assert ArpPathConfig(repair_buffer_size=0).repair_buffer_size == 0

    def test_zero_retries_allowed(self):
        assert ArpPathConfig(repair_retries=0).repair_retries == 0


class TestOverrides:
    def test_with_overrides_changes_field(self):
        tweaked = DEFAULT_CONFIG.with_overrides(lock_timeout=2.0)
        assert tweaked.lock_timeout == 2.0
        assert DEFAULT_CONFIG.lock_timeout != 2.0

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_overrides(lock_timeout=-1)

    def test_with_overrides_preserves_others(self):
        tweaked = DEFAULT_CONFIG.with_overrides(proxy_enabled=True)
        assert tweaked.learnt_timeout == DEFAULT_CONFIG.learnt_timeout
