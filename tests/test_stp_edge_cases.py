"""Edge-case tests for the 802.1D baseline."""

import pytest

from repro.frames.ethernet import ETHERTYPE_BPDU, EthernetFrame, STP_MULTICAST
from repro.netsim.engine import Simulator
from repro.stp.bpdu import BridgeId, ConfigBpdu, PortId
from repro.stp.bridge import PortRole, PortState, StpBridge, StpTimers
from repro.topology import pair, ring, stp
from repro.topology.builder import Network

FAST = StpTimers().scaled(0.1)


def fast_stp():
    return stp(timers=FAST)


class TestInferiorInformation:
    def test_designated_port_replies_to_inferior_bpdu(self, sim):
        """A late-joining bridge claiming root on our LAN is corrected
        immediately, not on the next hello tick."""
        net = pair(sim, fast_stp())
        net.run(4.0)
        b0 = net.bridge("B0")
        b1 = net.bridge("B1")
        sent_before = b1.stp_counters.bpdus_sent
        # Inject an inferior claim into B1's designated host port.
        pretender = BridgeId(0xF000, net.host("H1").mac)
        bogus = ConfigBpdu(root=pretender, cost=0, bridge=pretender,
                           port=PortId(0x80, 0),
                           max_age=FAST.max_age,
                           hello_time=FAST.hello_time,
                           forward_delay=FAST.forward_delay)
        host_port = net.host("H1").port.peer
        b1.handle_frame(host_port, EthernetFrame(
            dst=STP_MULTICAST, src=net.host("H1").mac,
            ethertype=ETHERTYPE_BPDU, payload=bogus))
        assert b1.stp_counters.bpdus_sent == sent_before + 1
        # And the tree is unchanged.
        assert b1.root_id == b0.bid

    def test_overage_bpdu_ignored(self, sim):
        net = pair(sim, fast_stp())
        net.run(4.0)
        b1 = net.bridge("B1")
        ancient = ConfigBpdu(root=BridgeId(0, net.host("H1").mac), cost=0,
                             bridge=BridgeId(0, net.host("H1").mac),
                             port=PortId(0x80, 0),
                             message_age=FAST.max_age,
                             max_age=FAST.max_age)
        host_port = net.host("H1").port.peer
        b1.handle_frame(host_port, EthernetFrame(
            dst=STP_MULTICAST, src=net.host("H1").mac,
            ethertype=ETHERTYPE_BPDU, payload=ancient))
        # Superior root claim, but too old to act on.
        assert b1.root_id != ancient.root


class TestPortStates:
    def test_listening_port_does_not_forward(self, sim):
        net = pair(sim, fast_stp())
        net.start()
        net.run(0.05)  # ports still LISTENING (forward delay is 1.5s)
        b0 = net.bridge("B0")
        states = {info.state for info in b0._port_info.values()
                  if info.port.is_attached}
        assert states <= {PortState.LISTENING, PortState.BLOCKING}
        # Traffic injected now goes nowhere.
        net.host("H0").gratuitous_arp()
        net.run(0.05)
        assert net.host("H1").counters.arp_requests_received == 0

    def test_full_transition_takes_two_forward_delays(self, sim):
        net = pair(sim, fast_stp())
        net.start()
        net.run(FAST.forward_delay + 0.1)
        b0 = net.bridge("B0")
        fabric_info = next(info for info in b0._port_info.values()
                           if info.port.peer.node.name == "B1")
        assert fabric_info.state is PortState.LEARNING
        net.run(FAST.forward_delay)
        assert fabric_info.state is PortState.FORWARDING

    def test_disabled_port_ignores_bpdus(self, sim):
        net = pair(sim, fast_stp())
        net.run(4.0)
        b1 = net.bridge("B1")
        wire = net.link_between("B0", "B1")
        wire.take_down()
        net.run(0.1)
        info = b1.info_for(wire.port_b if wire.port_b.node is b1
                           else wire.port_a)
        assert info.state is PortState.DISABLED
        received_before = b1.stp_counters.bpdus_received
        bpdu = ConfigBpdu(root=b1.bid, cost=0, bridge=b1.bid,
                          port=PortId(0x80, 0))
        b1._handle_bpdu(info.port, EthernetFrame(
            dst=STP_MULTICAST, src=b1.mac, ethertype=ETHERTYPE_BPDU,
            payload=bpdu))
        assert b1.stp_counters.bpdus_received == received_before


class TestRecoveryDynamics:
    def test_link_restore_reblocks_redundancy(self, sim):
        """Bringing a failed ring link back re-creates exactly one
        blocked port."""
        net = ring(sim, fast_stp(), 4)
        net.run(6.0)
        net.link_between("B1", "B2").take_down()
        net.run(5.0)
        net.link_between("B1", "B2").bring_up()
        net.run(5.0)
        blocked = [info for name in ("B0", "B1", "B2", "B3")
                   for info in net.bridge(name).ports_in(
                       PortRole.ALTERNATE)]
        assert len(blocked) == 1

    def test_partition_elects_two_roots(self, sim):
        net = ring(sim, fast_stp(), 4)
        net.run(6.0)
        # Cut the ring twice: {B0,B1} and {B2,B3} partitions.
        net.link_between("B1", "B2").take_down()
        net.link_between("B3", "B0").take_down()
        net.run(6.0)
        roots = {net.bridge(n).root_id for n in ("B0", "B1", "B2", "B3")}
        assert len(roots) == 2

    def test_heal_after_partition_single_root(self, sim):
        net = ring(sim, fast_stp(), 4)
        net.run(6.0)
        net.link_between("B1", "B2").take_down()
        net.link_between("B3", "B0").take_down()
        net.run(6.0)
        net.link_between("B1", "B2").bring_up()
        net.run(6.0)
        roots = {net.bridge(n).root_id for n in ("B0", "B1", "B2", "B3")}
        assert roots == {net.bridge("B0").bid}


class TestCounters:
    def test_bpdu_accounting(self, sim):
        net = pair(sim, fast_stp())
        net.run(4.0)
        b0, b1 = net.bridge("B0"), net.bridge("B1")
        assert b0.stp_counters.bpdus_sent > 0
        assert b1.stp_counters.bpdus_received > 0

    def test_discards_counted_during_convergence(self, sim):
        net = pair(sim, fast_stp())
        net.start()
        net.host("H0").gratuitous_arp()
        net.run(0.1)
        assert net.bridge("B0").stp_counters.discards_not_forwarding >= 1
