"""Tests for the centralized SDN/SPF controller family.

Covers the pinned control-plane contracts: the packet-in/flow-install
exchange (golden trace), idle vs hard flow timeouts through the
AgingStore, deterministic ECMP splitting, and the barriered repair
whose latency is exactly ``2 × rtt + install_latency``. A final
registry-parametrized smoke instantiates every scenario × family cell
through the bridge-family descriptor.
"""

import pytest

from repro.frames.mac import mac_for_bridge
from repro.netsim.engine import Simulator
from repro.switching import base
from repro.switching.controller import ControllerConfig
from repro.switching.controller.bridge import FlowEntry
from repro.testing import ping_once
from repro.topology import controller, grid, line, ring

RTT = ControllerConfig().rtt
INSTALL = ControllerConfig().install_latency


def controller_of(net):
    return next(iter(net.controllers.values()))


def warmed(sim, topo, *args, factory=None, warm=3.0):
    net = topo(sim, factory if factory is not None else controller(), *args)
    net.run(warm)
    return net


# -- discovery ---------------------------------------------------------------


class TestDiscovery:
    def test_controller_is_wired_out_of_band(self, sim):
        net = warmed(sim, ring, 4)
        ctl = controller_of(net)
        assert ctl.out_of_band
        assert "controller0" not in net.bridges
        # The fabric oracle never sees the star links.
        from repro.topology.builder import graph_of
        assert ctl.name not in graph_of(net)

    def test_graph_matches_fabric(self, sim):
        net = warmed(sim, ring, 4)
        ctl = controller_of(net)
        assert ctl.graph.number_of_nodes() == 4
        assert ctl.graph.number_of_edges() == 4
        macs = {net.bridge(n).mac for n in net.bridges}
        assert set(ctl.graph.nodes) == macs

    def test_lldp_learns_link_latency(self, sim):
        net = warmed(sim, ring, 4)
        ctl = controller_of(net)
        for _a, _b, data in ctl.graph.edges(data=True):
            assert data["weight"] > 0
            assert len(data["ports"]) == 2

    def test_hosts_reported_on_first_frame(self, sim):
        net = warmed(sim, ring, 4)
        ctl = controller_of(net)
        assert not ctl.hosts
        net.host("H0").gratuitous_arp()
        net.run(0.5)
        assert ctl.hosts[net.host("H0").mac][0] == net.bridge("B0").mac


# -- packet-in / flow-install (golden trace) ---------------------------------


class TestPacketIn:
    @pytest.fixture
    def traced(self, sim):
        """A warmed 3-bridge line with a spy on the controller inbox."""
        net = warmed(sim, line, 3)
        ctl = controller_of(net)
        trace = []
        inner = ctl.handle_frame

        def spy(port, frame):
            trace.append((frame.payload.op_name, frame.payload.origin,
                          frame.payload.src))
            inner(port, frame)

        ctl.handle_frame = spy
        return net, ctl, trace

    def test_golden_trace_one_ping(self, traced):
        """One ping = two host reports and exactly ONE packet-in.

        The ARP request is broadcast (no miss); the unicast ARP reply
        misses at its ingress and punts; the reverse pre-warm install
        means the echo request then rides an already-programmed flow.
        """
        net, ctl, trace = traced
        assert ping_once(net, "H0", "H1") is not None
        interesting = [entry for entry in trace
                       if entry[0] in ("HOST_REPORT", "PACKET_IN")]
        h0, h1 = net.host("H0").mac, net.host("H1").mac
        assert interesting == [
            ("HOST_REPORT", net.bridge("B0").mac, h0),
            ("HOST_REPORT", net.bridge("B2").mac, h1),
            # The unicast ARP reply (H1 -> H0) misses at its ingress B2.
            ("PACKET_IN", net.bridge("B2").mac, h1),
        ]

    def test_flows_programmed_along_path(self, traced):
        net, ctl, _trace = traced
        assert ping_once(net, "H0", "H1") is not None
        # Both directions installed on all three bridges: 6 flow-mods.
        assert ctl.counters.installs_sent == 6
        for name in ("B0", "B1", "B2"):
            bridge = net.bridge(name)
            assert bridge.protocol_counters()["flow_installs"] == 2
            assert bridge.state_entries() == 2
        assert len(ctl.flows) == 2

    def test_miss_buffers_frame_until_install(self, traced):
        """The frame that missed is not lost: it is buffered and
        forwarded once the flow-mod lands (counted, and the ping
        succeeds on the very first try)."""
        net, _ctl, _trace = traced
        assert ping_once(net, "H0", "H1") is not None
        counters = net.bridge("B2").protocol_counters()
        assert counters["misses"] == 1
        assert counters["frames_buffered"] == 1
        assert counters["drops_buffer"] == 0

    def test_second_ping_is_pure_dataplane(self, traced):
        net, ctl, trace = traced
        assert ping_once(net, "H0", "H1") is not None
        del trace[:]
        assert ping_once(net, "H0", "H1") is not None
        assert [entry for entry in trace
                if entry[0] in ("HOST_REPORT", "PACKET_IN")] == []


# -- flow timeouts through the AgingStore ------------------------------------


class TestFlowTimeouts:
    def test_entry_refresh_capped_by_hard_deadline(self):
        entry = FlowEntry(out_port=1, flood=False, idle=5.0,
                          expires=5.0, hard_deadline=8.0)
        entry.refresh(2.0)
        assert entry.expires == 7.0
        entry.refresh(6.0)  # now + idle would be 11.0 — the cap wins
        assert entry.expires == 8.0

    def test_idle_timeout_expires_without_traffic(self, sim):
        net = warmed(sim, line, 3,
                     factory=controller(flow_idle=0.3, flow_hard=60.0))
        assert ping_once(net, "H0", "H1", timeout=0.1) is not None
        assert net.bridge("B0").state_entries() == 2
        net.run(1.0)  # silence > flow_idle
        for name in ("B0", "B1", "B2"):
            bridge = net.bridge(name)
            assert bridge.state_entries() == 0
            assert bridge.protocol_counters()["flow_expired"] == 2
        # FLOW_EXPIRED notifications cleaned the controller's records.
        assert not controller_of(net).flows

    def test_traffic_refreshes_idle_timer(self, sim):
        net = warmed(sim, line, 3,
                     factory=controller(flow_idle=0.5, flow_hard=60.0))
        assert ping_once(net, "H0", "H1", timeout=0.3) is not None
        for _ in range(6):  # one ping every 0.3 s < flow_idle
            assert ping_once(net, "H0", "H1", timeout=0.3) is not None
        assert net.bridge("B0").protocol_counters()["flow_expired"] == 0
        assert net.bridge("B0").state_entries() == 2

    def test_hard_timeout_fires_despite_traffic(self, sim):
        net = warmed(sim, line, 3,
                     factory=controller(flow_idle=10.0, flow_hard=0.8))
        assert ping_once(net, "H0", "H1", timeout=0.3) is not None
        for _ in range(8):  # refreshed well within idle the whole time
            assert ping_once(net, "H0", "H1", timeout=0.3) is not None
        assert net.bridge("B0").protocol_counters()["flow_expired"] >= 1


# -- ECMP --------------------------------------------------------------------


class TestEcmp:
    @staticmethod
    def _installed(net):
        """Flow tables as comparable data: bridge -> {key: out_port}."""
        return {name: {key: entry.out_port
                       for key, entry in net.bridge(name).flows.items()}
                for name in sorted(net.bridges)}

    @staticmethod
    def _ecmp_run(seed):
        sim = Simulator(seed=seed)
        net = grid(sim, controller(ecmp=True), 2, 2)
        net.run(3.0)
        for src, dst in (("H0", "H3"), ("H1", "H2"), ("H2", "H1")):
            assert ping_once(net, src, dst) is not None
        return net

    def test_ecmp_keys_are_pairs(self, sim):
        net = warmed(sim, grid, 2, 2, factory=controller(ecmp=True))
        assert ping_once(net, "H0", "H3") is not None
        keys = list(net.bridge("B0_0").flows.items())
        assert keys and all(isinstance(key, tuple) for key, _ in keys)

    def test_ecmp_split_deterministic_at_fixed_seed(self):
        first = self._installed(self._ecmp_run(7))
        second = self._installed(self._ecmp_run(7))
        assert first == second

    def test_ecmp_spreads_flows_across_paths(self):
        """On the 2×2 grid the two corner-to-corner paths are equal
        cost; the CRC32 per-flow hash must not collapse every pair onto
        one of them."""
        sim = Simulator(seed=7)
        net = grid(sim, controller(ecmp=True), 2, 2)
        net.run(3.0)
        hosts = sorted(net.hosts)
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    assert ping_once(net, src, dst, timeout=0.5) is not None
        used = {name for name in net.bridges
                if net.bridge(name).flows}
        assert used == set(net.bridges)  # both middle bridges carry flows


# -- repair ------------------------------------------------------------------


class TestRepair:
    @pytest.fixture
    def cut_ring(self, sim):
        """A warmed 4-ring with live H0↔H1 flows, then the B0-B1 cut."""
        net = warmed(sim, ring, 4)
        assert ping_once(net, "H0", "H1") is not None
        net.link_between("B0", "B1").take_down()
        net.run(1.0)
        return net

    def test_repair_latency_is_two_rtts_plus_install(self, cut_ring):
        """The ISSUE's pinned timeline: PORT_STATUS (½ RTT) →
        FLOW_REMOVE (1 RTT) → REMOVE_ACK barrier (1½ RTT) →
        FLOW_INSTALL lands (2 RTT) → programmed after the flow-mod
        delay. Each cut-adjacent ingress records exactly that."""
        expected = 2 * RTT + INSTALL
        assert cut_ring.bridge("B0").repair_events() \
            == [pytest.approx(expected)]
        assert cut_ring.bridge("B1").repair_events() \
            == [pytest.approx(expected)]

    def test_repair_is_proactive(self, cut_ring):
        """No post-cut traffic was needed: the controller repaired on
        PORT_STATUS alone (no new packet-in during the repair)."""
        ctl = controller_of(cut_ring)
        assert ctl.counters.repairs_started == 1
        assert ctl.counters.repairs_completed >= 1
        assert cut_ring.bridge("B0").protocol_counters()[
            "repairs_completed"] == 1

    def test_reroute_survives_the_cut(self, cut_ring):
        """Traffic flows the long way round after the repair."""
        rtt = ping_once(cut_ring, "H0", "H1")
        assert rtt is not None
        assert controller_of(cut_ring).graph.number_of_edges() == 3

    def test_graph_heals_on_link_up(self, cut_ring):
        cut_ring.link_between("B0", "B1").bring_up()
        cut_ring.run(3.0)
        assert controller_of(cut_ring).graph.number_of_edges() == 4


# -- the family descriptor and registry --------------------------------------


class TestFamilyRegistry:
    def test_controller_family_registered(self):
        base.load_families()
        fam = base.family("controller")
        assert fam.loop_safe
        assert fam.order == 50
        option_names = {option.name for option in fam.options}
        assert {"rtt", "install_latency", "flow_idle", "flow_hard",
                "ecmp"} <= option_names

    def test_family_names_order_and_loop_safety(self):
        assert list(base.family_names()) == ["arppath", "stp", "spb",
                                             "learning", "controller"]
        assert list(base.family_names(loop_safe_only=True)) \
            == ["arppath", "stp", "spb", "controller"]

    def test_control_ethertypes_union(self):
        ethertypes = base.control_ethertypes()
        assert 0x88B7 in ethertypes  # the controller channel
        assert list(ethertypes) == sorted(ethertypes)

    def test_describe_is_schema_ready(self):
        info = base.family("controller").describe()
        assert info["name"] == "controller"
        assert any(option["name"] == "rtt" for option in info["config"])
        assert "0x88b7" in info["control_ethertypes"]


def _scenario_family_cells():
    from repro.experiments import registry
    registry.load_all()
    cells = []
    for scenario in registry.all_scenarios():
        for param in scenario.params:
            if param.name in ("protocol", "protocols") \
                    and param.choices is not None:
                for choice in param.choices:
                    cells.append((scenario.name, choice))
    return cells


@pytest.mark.parametrize("scenario_name,family", _scenario_family_cells())
def test_every_scenario_family_cell_instantiates(scenario_name, family):
    """Every scenario × family cell resolves through the descriptor:
    spec() finds the family, its factory builds a bridge, and the
    registry-derived warmup is sane."""
    from repro.experiments.common import spec

    protocol = spec(family)
    assert protocol.warmup > 0
    sim = Simulator(seed=0)
    bridge = protocol.factory(sim, "B0", mac_for_bridge(0))
    assert bridge.name == "B0"
    assert bridge.protocol_counters() is not None
