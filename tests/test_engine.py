"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.engine import (PRIORITY_EARLY, PRIORITY_LATE,
                                 PRIORITY_NORMAL, Simulator)
from repro.netsim.errors import SchedulingError


class TestScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(1.5, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        order = []
        sim.at(2.0, order.append, "x")
        sim.run()
        assert sim.now == 2.0 and order == ["x"]

    def test_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.at(0.5, lambda: None)

    def test_fifo_within_same_time(self, sim):
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_beats_insertion_order(self, sim):
        order = []
        sim.schedule(1.0, order.append, "normal", priority=PRIORITY_NORMAL)
        sim.schedule(1.0, order.append, "early", priority=PRIORITY_EARLY)
        sim.schedule(1.0, order.append, "late", priority=PRIORITY_LATE)
        sim.run()
        assert order == ["early", "normal", "late"]

    def test_call_soon_runs_after_current(self, sim):
        order = []

        def outer():
            sim.call_soon(order.append, "inner")
            order.append("outer")

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_events_scheduled_while_running(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestRunControl:
    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_queue_drains(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_for_is_relative(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_for(2.0)
        assert sim.now == 2.0
        sim.run_for(2.0)
        assert sim.now == 4.0

    def test_max_events(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4

    def test_step(self, sim):
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_events_processed_counter(self, sim):
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestPeriodic:
    def test_fires_repeatedly(self, sim):
        count = []
        sim.schedule_periodic(1.0, count.append, 1)
        sim.run(until=5.5)
        assert len(count) == 5

    def test_stop(self, sim):
        count = []
        timer = sim.schedule_periodic(1.0, count.append, 1)
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert len(count) == 2

    def test_stop_is_idempotent(self, sim):
        timer = sim.schedule_periodic(1.0, lambda: None)
        timer.stop()
        timer.stop()

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_periodic(0.0, lambda: None)

    def test_jitter_spreads_firings(self):
        sim = Simulator(seed=7)
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now),
                              jitter=0.5)
        sim.run(until=20.0)
        deltas = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(deltas) > 1  # jitter actually varies
        assert all(1.0 <= d < 1.5 + 1e-9 for d in deltas)

    def test_interval_property(self, sim):
        timer = sim.schedule_periodic(2.5, lambda: None)
        assert timer.interval == 2.5
        timer.stop()


class TestDeterminism:
    def _run_once(self, seed):
        sim = Simulator(seed=seed)
        trace = []

        def noisy(tag):
            trace.append((round(sim.now, 9), tag, sim.rng.random()))

        for tag in range(5):
            sim.schedule_periodic(0.1 + tag * 0.01, noisy, tag)
        sim.run(until=2.0)
        return trace

    def test_same_seed_same_trace(self):
        assert self._run_once(3) == self._run_once(3)

    def test_different_seed_different_rng(self):
        first = self._run_once(3)
        second = self._run_once(4)
        assert [t[:2] for t in first] == [t[:2] for t in second]
        assert first != second

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0),
                    min_size=1, max_size=20))
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator(seed=0)
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
