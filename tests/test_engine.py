"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.engine import (PRIORITY_EARLY, PRIORITY_LATE,
                                 PRIORITY_NORMAL, Simulator)
from repro.netsim.errors import SchedulingError


class TestScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(1.5, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        order = []
        sim.at(2.0, order.append, "x")
        sim.run()
        assert sim.now == 2.0 and order == ["x"]

    def test_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.at(0.5, lambda: None)

    def test_fifo_within_same_time(self, sim):
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_beats_insertion_order(self, sim):
        order = []
        sim.schedule(1.0, order.append, "normal", priority=PRIORITY_NORMAL)
        sim.schedule(1.0, order.append, "early", priority=PRIORITY_EARLY)
        sim.schedule(1.0, order.append, "late", priority=PRIORITY_LATE)
        sim.run()
        assert order == ["early", "normal", "late"]

    def test_call_soon_runs_after_current(self, sim):
        order = []

        def outer():
            sim.call_soon(order.append, "inner")
            order.append("outer")

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_events_scheduled_while_running(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestRunControl:
    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_queue_drains(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_for_is_relative(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_for(2.0)
        assert sim.now == 2.0
        sim.run_for(2.0)
        assert sim.now == 4.0

    def test_max_events(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.events_processed == 4

    def test_step(self, sim):
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_events_processed_counter(self, sim):
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestPeriodic:
    def test_fires_repeatedly(self, sim):
        count = []
        sim.schedule_periodic(1.0, count.append, 1)
        sim.run(until=5.5)
        assert len(count) == 5

    def test_stop(self, sim):
        count = []
        timer = sim.schedule_periodic(1.0, count.append, 1)
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert len(count) == 2

    def test_stop_is_idempotent(self, sim):
        timer = sim.schedule_periodic(1.0, lambda: None)
        timer.stop()
        timer.stop()

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_periodic(0.0, lambda: None)

    def test_jitter_spreads_firings(self):
        sim = Simulator(seed=7)
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now),
                              jitter=0.5)
        sim.run(until=20.0)
        deltas = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(deltas) > 1  # jitter actually varies
        assert all(1.0 <= d < 1.5 + 1e-9 for d in deltas)

    def test_interval_property(self, sim):
        timer = sim.schedule_periodic(2.5, lambda: None)
        assert timer.interval == 2.5
        timer.stop()


class TestPendingEvents:
    def test_schedule_increments(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2

    def test_cancellation_decrements(self, sim):
        """Regression: the O(1) counter must track Event.cancel()."""
        keep = sim.schedule(1.0, lambda: None)
        victim = sim.schedule(2.0, lambda: None)
        victim.cancel()
        assert sim.pending_events == 1
        assert sim.audit_pending_events() == 1
        keep.cancel()
        assert sim.pending_events == 0

    def test_cancel_idempotent_counts_once(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 0

    def test_firing_decrements(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_after_firing_is_noop(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        assert sim.pending_events == 0

    def test_wheel_timers_counted(self, sim):
        timer = sim.schedule_timer(0.5, lambda: None)
        assert sim.pending_events == 1
        assert sim.audit_pending_events() == 1
        timer.cancel()
        assert sim.pending_events == 0
        assert sim.audit_pending_events() == 0

    def test_audit_matches_after_mixed_workload(self, sim):
        events = [sim.schedule(i * 0.1, lambda: None) for i in range(10)]
        timers = [sim.schedule_timer(i * 0.3, lambda: None)
                  for i in range(10)]
        for victim in events[::2] + timers[::2]:
            victim.cancel()
        sim.run(until=0.45)
        assert sim.audit_pending_events() == sim.pending_events


class TestTimerWheel:
    def test_timer_fires_at_deadline(self, sim):
        fired = []
        sim.schedule_timer(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_cancelled_timer_never_fires(self, sim):
        fired = []
        timer = sim.schedule_timer(1.0, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_timer(-0.1, lambda: None)

    def test_orders_with_heap_events(self, sim):
        """Wheel timers interleave with heap events in exact time order."""
        order = []
        sim.schedule(1.0, order.append, "heap-1.0")
        sim.schedule_timer(0.5, order.append, "wheel-0.5")
        sim.schedule_timer(1.5, order.append, "wheel-1.5")
        sim.schedule(2.0, order.append, "heap-2.0")
        sim.run()
        assert order == ["wheel-0.5", "heap-1.0", "wheel-1.5", "heap-2.0"]

    def test_same_instant_late_priority(self, sim):
        """Timers default to PRIORITY_LATE: data events at the same
        instant run first."""
        order = []
        sim.schedule_timer(1.0, order.append, "timer")
        sim.schedule(1.0, order.append, "data")
        sim.run()
        assert order == ["data", "timer"]

    def test_far_future_timer_cascades(self, sim):
        """A timer beyond the fine wheel span (coarse bucket) still
        fires at its exact deadline."""
        span = sim.wheel.span
        fired = []
        sim.schedule_timer(span * 3.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(span * 3.5)]

    def test_run_until_leaves_future_timers(self, sim):
        fired = []
        sim.schedule_timer(5.0, fired.append, "late")
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=10.0)
        assert fired == ["late"]

    def test_timer_deterministic_order_within_instant(self, sim):
        order = []
        sim.schedule_timer(1.0, order.append, "a")
        sim.schedule_timer(1.0, order.append, "b")
        sim.run()
        assert order == ["a", "b"]

    def test_awkward_resolution_keeps_exact_order(self):
        """Regression: bucket boundaries that are not exactly
        representable (1.7/0.1 rounds up to 17.0, and 17*0.1 > 1.7)
        must not file a timer past its own deadline — the LATE wheel
        timer still beats a later-priority heap event at the same
        instant."""
        sim = Simulator(seed=0, wheel_resolution=0.1)
        order = []
        sim.schedule_timer(1.7, order.append, "timer-late")
        sim.schedule(1.7, order.append, "heap-later",
                     priority=PRIORITY_LATE + 5)
        sim.run()
        assert order == ["timer-late", "heap-later"]
        assert sim.now == pytest.approx(1.7)

    def test_awkward_resolution_exact_interleave(self):
        """Wheel and heap events interleave identically to heap-only
        scheduling at a non-power-of-two resolution."""
        def firing_order(use_wheel):
            sim = Simulator(seed=0, wheel_resolution=0.1)
            order = []
            for i in range(50):
                delay = round(0.1 + i * 0.17, 10)
                if use_wheel and i % 2:
                    sim.schedule_timer(delay, order.append, i,
                                       priority=PRIORITY_NORMAL)
                else:
                    sim.schedule(delay, order.append, i)
            sim.run()
            return order

        assert firing_order(True) == firing_order(False)

    def test_run_until_does_not_drain_far_wheel_timers(self, sim):
        """Regression: slice-stepping (run(until=...)) must leave
        timers beyond the slice on the wheel, where cancellation stays
        O(1) — not pour them into the heap."""
        timer = sim.schedule_timer(500.0, lambda: None)
        sim.run(until=1.0)
        assert len(sim.wheel) == 1
        timer.cancel()
        assert sim.pending_events == 0
        sim.run()

    def test_step_pours_wheel(self, sim):
        fired = []
        sim.schedule_timer(0.5, fired.append, "x")
        assert sim.step() is True
        assert fired == ["x"]
        assert sim.step() is False


class TestScheduleBulk:
    def test_bulk_matches_individual_scheduling(self):
        def run_with(bulk):
            sim = Simulator(seed=0)
            order = []
            specs = [(0.3, order.append, "a"), (0.1, order.append, "b"),
                     (0.2, order.append, "c")]
            if bulk:
                sim.schedule_bulk(specs)
            else:
                for delay, callback, arg in specs:
                    sim.schedule(delay, callback, arg)
            sim.run()
            return order

        assert run_with(bulk=True) == run_with(bulk=False) == ["b", "c", "a"]

    def test_bulk_counts_pending(self, sim):
        events = sim.schedule_bulk((i * 0.1, lambda: None)
                                   for i in range(50))
        assert len(events) == 50
        assert sim.pending_events == 50
        events[0].cancel()
        assert sim.pending_events == 49

    def test_bulk_preserves_existing_queue(self, sim):
        order = []
        sim.schedule(0.15, order.append, "old")
        sim.schedule_bulk([(0.1, order.append, "new-early"),
                           (0.2, order.append, "new-late")])
        sim.run()
        assert order == ["new-early", "old", "new-late"]

    def test_bulk_rejects_past(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_bulk([(-1.0, lambda: None)])

    def test_bulk_events_cancellable(self, sim):
        fired = []
        events = sim.schedule_bulk([(0.1, fired.append, i)
                                    for i in range(5)])
        events[2].cancel()
        sim.run()
        assert fired == [0, 1, 3, 4]


class TestDeterminism:
    def _run_once(self, seed):
        sim = Simulator(seed=seed)
        trace = []

        def noisy(tag):
            trace.append((round(sim.now, 9), tag, sim.rng.random()))

        for tag in range(5):
            sim.schedule_periodic(0.1 + tag * 0.01, noisy, tag)
        sim.run(until=2.0)
        return trace

    def test_same_seed_same_trace(self):
        assert self._run_once(3) == self._run_once(3)

    def test_different_seed_different_rng(self):
        first = self._run_once(3)
        second = self._run_once(4)
        assert [t[:2] for t in first] == [t[:2] for t in second]
        assert first != second

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0),
                    min_size=1, max_size=20))
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator(seed=0)
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
