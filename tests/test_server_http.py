"""End-to-end HTTP API tests: a real daemon on an ephemeral port.

One module-scoped daemon backs the read-only endpoint tests; the
determinism, cancellation and durability tests boot their own daemons
against tmp databases so restarts can be exercised.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import registry, runner
from repro.metrics.report import record_line
from repro.server import jobs as jobs_mod
from repro.server import store as store_mod
from repro.server.daemon import Daemon, DaemonConfig, PidfileError

registry.load_all()

SCALE_SPEC = {"scenario": "scale", "seeds": [0, 1],
              "set": {"sizes": [9], "protocols": ["arppath"],
                      "pairs": [1], "probes": [1]}}


def request(base, path, method="GET", payload=None):
    """(status, headers, body-str) — 4xx/5xx don't raise."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(base + path, data=data,
                                 headers=headers, method=method)
    try:
        with urllib.request.urlopen(req) as response:
            return response.status, dict(response.headers), \
                response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), \
            error.read().decode()


def get_json(base, path):
    status, _, body = request(base, path)
    return status, json.loads(body)


def wait_state(base, job_id, states, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, payload = get_json(base, f"/v1/jobs/{job_id}")
        if payload["job"]["state"] in states:
            return payload["job"]
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {states}")


def make_daemon(tmp_path, **overrides):
    config = dict(host="127.0.0.1", port=0,
                  db=str(tmp_path / "serve.db"), workers=2, pool=2)
    config.update(overrides)
    daemon = Daemon(DaemonConfig(**config))
    daemon.start()
    return daemon, "http://{}:{}".format(*daemon.address)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    daemon, base = make_daemon(tmp_path_factory.mktemp("serve"))
    yield base
    daemon.stop()


class TestReadEndpoints:
    def test_health(self, served):
        status, payload = get_json(served, "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0

    def test_scenarios_match_registry(self, served):
        status, payload = get_json(served, "/v1/scenarios")
        assert status == 200
        assert [s["title"] for s in payload["scenarios"]] == \
            registry.names()
        assert payload["submission"]["required"] == ["scenario"]

    def test_single_scenario_schema(self, served):
        status, payload = get_json(served, "/v1/scenarios/scale")
        assert status == 200
        assert payload == registry.get("scale").schema()

    def test_unknown_scenario_404(self, served):
        status, payload = get_json(served, "/v1/scenarios/nope")
        assert status == 404
        assert "error" in payload

    def test_unknown_endpoint_404(self, served):
        status, _ = get_json(served, "/v1/nonsense")
        assert status == 404

    def test_wrong_verb_405(self, served):
        status, _, _ = request(served, "/v1/health", method="POST",
                               payload={})
        assert status == 405
        # and the shared-path case: GET on the POST-only cancel route
        status, _, _ = request(served, "/v1/jobs/1/cancel")
        assert status == 405

    def test_missing_job_404(self, served):
        status, _ = get_json(served, "/v1/jobs/424242")
        assert status == 404

    def test_non_numeric_job_id_400(self, served):
        status, _ = get_json(served, "/v1/jobs/abc")
        assert status == 400

    def test_bad_submission_400_names_field(self, served):
        status, _, body = request(
            served, "/v1/jobs", method="POST",
            payload={"scenario": "scale", "set": {"bogus": [1]}})
        assert status == 400
        assert json.loads(body)["error"]["field"] == "set.bogus"

    def test_malformed_body_400(self, served):
        req = urllib.request.Request(
            served + "/v1/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req)
        assert excinfo.value.code == 400

    def test_bad_state_filter_400(self, served):
        status, _ = get_json(served, "/v1/jobs?state=sideways")
        assert status == 400


class TestJobsOverHTTP:
    def test_submit_run_stream_summary(self, tmp_path):
        daemon, base = make_daemon(tmp_path)
        try:
            status, _, body = request(base, "/v1/jobs", method="POST",
                                      payload=SCALE_SPEC)
            assert status == 202
            job = json.loads(body)["job"]
            assert job["state"] == store_mod.QUEUED
            assert job["cells_total"] == 2
            # the persisted spec is the normalized one
            assert job["spec"]["jobs"] == 1
            assert job["spec"]["timeout"] is None

            final = wait_state(base, job["id"], store_mod.TERMINAL)
            assert final["state"] == store_mod.COMPLETED

            status, headers, ndjson = request(
                base, f"/v1/jobs/{job['id']}/records")
            assert status == 200
            assert headers["Content-Type"] == "application/x-ndjson"
            assert headers["X-Job-State"] == store_mod.COMPLETED
            lines = ndjson.splitlines()
            assert int(headers["X-Next-Offset"]) == len(lines)

            status, payload = get_json(
                base, f"/v1/jobs/{job['id']}/summary")
            assert status == 200
            assert payload["summary"]["summary"]

            status, payload = get_json(base, "/v1/jobs?limit=5")
            assert [j["id"] for j in payload["jobs"]] == [job["id"]]
        finally:
            daemon.stop()

    def test_records_byte_identical_to_sweep_at_any_pool_size(
            self, tmp_path):
        # THE acceptance criterion: same grid, three surfaces, one
        # byte stream — serial sweep, pooled daemon, HTTP NDJSON.
        spec = jobs_mod.validate_submission(SCALE_SPEC)
        cells = jobs_mod.spec_cells(spec)
        report = runner.SweepReport(cells=sorted(
            runner.SweepRunner(cells, jobs=1).stream(),
            key=lambda r: r.cell.index))
        expected = [record_line(row) for row in report.rows()]

        for pool in (1, 2):
            daemon, base = make_daemon(tmp_path, pool=pool,
                                       db=str(tmp_path /
                                              f"p{pool}.db"))
            try:
                _, _, body = request(
                    base, "/v1/jobs", method="POST",
                    payload=dict(SCALE_SPEC, jobs=pool))
                job = json.loads(body)["job"]
                wait_state(base, job["id"], store_mod.TERMINAL)
                _, _, ndjson = request(
                    base, f"/v1/jobs/{job['id']}/records")
                assert ndjson.splitlines() == expected, \
                    f"pool={pool} diverged"
            finally:
                daemon.stop()

    def test_offset_resumption_covers_the_stream(self, tmp_path):
        daemon, base = make_daemon(tmp_path)
        try:
            _, _, body = request(base, "/v1/jobs", method="POST",
                                 payload=SCALE_SPEC)
            job = json.loads(body)["job"]
            wait_state(base, job["id"], store_mod.TERMINAL)
            _, _, whole = request(base,
                                  f"/v1/jobs/{job['id']}/records")
            expected = whole.splitlines()

            # page through two records at a time via X-Next-Offset
            collected, offset = [], 0
            while True:
                _, headers, page = request(
                    base,
                    f"/v1/jobs/{job['id']}/records"
                    f"?offset={offset}&limit=2")
                collected += page.splitlines()
                next_offset = int(headers["X-Next-Offset"])
                if next_offset == offset:
                    break
                offset = next_offset
            assert collected == expected

            # format=json envelope carries the same rows
            _, payload = get_json(
                base, f"/v1/jobs/{job['id']}/records?format=json")
            assert [record_line(r) for r in payload["records"]] == \
                expected
            assert payload["state"] == store_mod.COMPLETED
            assert payload["next_offset"] == len(expected)
        finally:
            daemon.stop()

    def test_cancel_over_http(self, tmp_path):
        daemon, base = make_daemon(tmp_path, workers=1, pool=1)
        try:
            slow = {"scenario": "churn", "seeds": list(range(40)),
                    "set": {"duration": [120],
                            "protocols": ["arppath"]}}
            _, _, body = request(base, "/v1/jobs", method="POST",
                                 payload=slow)
            job = json.loads(body)["job"]
            wait_state(base, job["id"],
                       (store_mod.RUNNING,) + store_mod.TERMINAL)
            status, _, body = request(
                base, f"/v1/jobs/{job['id']}/cancel", method="POST",
                payload={})
            assert status == 202
            final = wait_state(base, job["id"], store_mod.TERMINAL)
            assert final["state"] == store_mod.CANCELLED
        finally:
            daemon.stop()

    def test_worker_crash_surfaces_traceback(self, tmp_path):
        daemon, base = make_daemon(tmp_path)
        try:
            bad = {"scenario": "churn", "seeds": [0],
                   "set": {"topology": ["demo"],
                           "protocols": ["learning"],
                           "duration": [1]}}
            _, _, body = request(base, "/v1/jobs", method="POST",
                                 payload=bad)
            job = json.loads(body)["job"]
            final = wait_state(base, job["id"], store_mod.TERMINAL)
            assert final["state"] == store_mod.FAILED
            assert "Traceback" in final["error"]
        finally:
            daemon.stop()

    def test_stats_counts_requests_and_jobs(self, tmp_path):
        daemon, base = make_daemon(tmp_path)
        try:
            get_json(base, "/v1/health")
            _, _, body = request(base, "/v1/jobs", method="POST",
                                 payload=SCALE_SPEC)
            job = json.loads(body)["job"]
            wait_state(base, job["id"], store_mod.TERMINAL)
            status, payload = get_json(base, "/v1/stats")
            assert status == 200
            routes = {(r["method"], r["route"], r["status"])
                      for r in payload["requests"]}
            assert ("GET", "/v1/health", 200) in routes
            assert ("POST", "/v1/jobs", 202) in routes
            # the job-status route is labelled by template, not path
            assert ("GET", "/v1/jobs/<job_id>", 200) in routes
            assert payload["jobs"][store_mod.COMPLETED] >= 1
            histogram = payload["latency"]["/v1/health"]
            assert histogram["total"] >= 1
            assert sum(histogram["counts"]) == histogram["total"]
            assert payload["workers"]["workers"] == 2
        finally:
            daemon.stop()


class TestDurability:
    def test_history_and_records_survive_restart(self, tmp_path):
        db = str(tmp_path / "serve.db")
        daemon, base = make_daemon(tmp_path, db=db)
        _, _, body = request(base, "/v1/jobs", method="POST",
                             payload=SCALE_SPEC)
        job = json.loads(body)["job"]
        wait_state(base, job["id"], store_mod.TERMINAL)
        _, _, before = request(base, f"/v1/jobs/{job['id']}/records")
        daemon.stop()

        daemon, base = make_daemon(tmp_path, db=db)
        try:
            _, payload = get_json(base, "/v1/jobs")
            assert [j["id"] for j in payload["jobs"]] == [job["id"]]
            assert payload["jobs"][0]["state"] == store_mod.COMPLETED
            _, _, after = request(base,
                                  f"/v1/jobs/{job['id']}/records")
            assert after == before
        finally:
            daemon.stop()


class TestPidfile:
    def test_live_pidfile_refuses_second_daemon(self, tmp_path):
        pidfile = str(tmp_path / "serve.pid")
        daemon, _ = make_daemon(tmp_path, pidfile=pidfile)
        try:
            import os
            assert int(open(pidfile).read()) == os.getpid()
            second = Daemon(DaemonConfig(
                host="127.0.0.1", port=0,
                db=str(tmp_path / "other.db"), pidfile=pidfile))
            with pytest.raises(PidfileError):
                second.start()
        finally:
            daemon.stop()
        assert not __import__("os").path.exists(pidfile)

    def test_stale_pidfile_is_replaced(self, tmp_path):
        pidfile = tmp_path / "serve.pid"
        pidfile.write_text("999999999\n")  # no such pid
        daemon, base = make_daemon(tmp_path, pidfile=str(pidfile))
        try:
            status, _ = get_json(base, "/v1/health")
            assert status == 200
        finally:
            daemon.stop()


class TestErrorSurfacing:
    FAILING_SPEC = {"scenario": "churn", "seeds": [0],
                    "set": {"topology": ["demo"],
                            "protocols": ["learning"],
                            "duration": [1]}}

    def test_failed_job_error_rides_headers_and_envelope(self, tmp_path):
        daemon, base = make_daemon(tmp_path)
        try:
            _, _, body = request(base, "/v1/jobs", method="POST",
                                 payload=self.FAILING_SPEC)
            job = json.loads(body)["job"]
            final = wait_state(base, job["id"], store_mod.TERMINAL)
            assert final["state"] == store_mod.FAILED

            status, headers, _ = request(
                base, f"/v1/jobs/{job['id']}/records")
            assert status == 200
            assert headers["X-Job-State"] == store_mod.FAILED
            # one header-safe line: the traceback's terminal summary
            error_line = headers["X-Job-Error"]
            assert "ValueError" in error_line
            assert "\n" not in error_line
            assert len(error_line) <= 200

            status, payload = get_json(
                base, f"/v1/jobs/{job['id']}/records?format=json")
            assert status == 200
            assert payload["state"] == store_mod.FAILED
            # the envelope carries the *full* error, traceback and all
            assert "Traceback" in payload["error"]
            assert "ValueError" in payload["error"]
        finally:
            daemon.stop()

    def test_completed_job_has_no_error_header(self, tmp_path):
        daemon, base = make_daemon(tmp_path)
        try:
            _, _, body = request(base, "/v1/jobs", method="POST",
                                 payload=SCALE_SPEC)
            job = json.loads(body)["job"]
            wait_state(base, job["id"], store_mod.TERMINAL)
            _, headers, _ = request(base,
                                    f"/v1/jobs/{job['id']}/records")
            assert "X-Job-Error" not in headers
            _, payload = get_json(
                base, f"/v1/jobs/{job['id']}/records?format=json")
            assert payload["error"] is None
        finally:
            daemon.stop()
