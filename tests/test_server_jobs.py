"""JobManager: queue workers, determinism, cancel/timeout/crash paths.

These run the real scenario grids (tiny ones) through the real
SweepRunner — no mocks — so the determinism contract asserted here is
the one the HTTP API exposes.
"""

import time

import pytest

from repro.experiments import registry, runner
from repro.metrics.report import record_line
from repro.server import jobs as jobs_mod
from repro.server import store as store_mod
from repro.server.jobs import JobManager
from repro.server.store import Store

registry.load_all()

#: Small, fast grid used by most tests: 2 seeds x 1 cell each.
SCALE_SPEC = {"scenario": "scale", "seeds": [0, 1],
              "set": {"sizes": [9], "protocols": ["arppath"],
                      "pairs": [1], "probes": [1]}}

#: Deterministically failing grid: the learning bridge refuses loopy
#: topologies, so this cell raises inside the worker.
FAILING_SPEC = {"scenario": "churn", "seeds": [0],
                "set": {"topology": ["demo"], "protocols": ["learning"],
                        "duration": [1]}}


def wait_terminal(store, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = store.get_job(job_id)
        if job["state"] in store_mod.TERMINAL:
            return job
        time.sleep(0.02)
    raise AssertionError(
        f"job {job_id} not terminal after {timeout}s: "
        f"{store.get_job(job_id)}")


@pytest.fixture
def manager():
    store = Store(":memory:")
    mgr = JobManager(store, workers=2, pool_jobs=1)
    mgr.start()
    yield mgr
    mgr.shutdown()
    store.close()


class TestHappyPath:
    def test_job_completes_with_records_and_summary(self, manager):
        job = manager.submit(SCALE_SPEC)
        assert job["state"] == store_mod.QUEUED
        assert job["cells_total"] == 2
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.COMPLETED
        assert done["cells_done"] == 2
        assert done["record_count"] > 0
        summary = manager.store.get_summary(job["id"])
        assert summary is not None
        assert "rows" not in summary  # rows live in the record store
        assert summary["summary"]

    def test_records_byte_identical_to_direct_sweep(self, manager):
        # The acceptance criterion: the stored record stream equals an
        # in-process SweepRunner run of the same grid, byte for byte.
        job = manager.submit(SCALE_SPEC)
        wait_terminal(manager.store, job["id"])
        stored = manager.store.fetch_records(job["id"])

        spec = jobs_mod.validate_submission(SCALE_SPEC)
        cells = jobs_mod.spec_cells(spec)
        report = runner.SweepReport(cells=sorted(
            runner.SweepRunner(cells, jobs=1).stream(),
            key=lambda r: r.cell.index))
        direct = [record_line(row) for row in report.rows()]
        assert stored == direct

    def test_concurrent_jobs_do_not_mix_records(self, manager):
        first = manager.submit(SCALE_SPEC)
        second = manager.submit(dict(SCALE_SPEC, seeds=[2]))
        wait_terminal(manager.store, first["id"])
        wait_terminal(manager.store, second["id"])
        seeds_a = {line.rsplit(":", 1)[-1]
                   for line in manager.store.fetch_records(first["id"])}
        assert manager.store.record_count(second["id"]) > 0
        assert seeds_a  # sanity: records landed under the right job

    def test_invalid_submission_never_creates_a_job(self, manager):
        with pytest.raises(registry.SubmissionError):
            manager.submit({"scenario": "scale", "set": {"bogus": [1]}})
        assert manager.store.list_jobs() == []


class TestFailureSurfacing:
    def test_cell_crash_marks_job_failed_with_traceback(self, manager):
        job = manager.submit(FAILING_SPEC)
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.FAILED
        assert "cell " in done["error"]
        assert "Traceback" in done["error"]
        assert "ValueError" in done["error"]

    def test_failed_job_does_not_wedge_the_queue(self, manager):
        bad = manager.submit(FAILING_SPEC)
        good = manager.submit(SCALE_SPEC)
        assert wait_terminal(manager.store, bad["id"])["state"] == \
            store_mod.FAILED
        assert wait_terminal(manager.store, good["id"])["state"] == \
            store_mod.COMPLETED


class TestCancellation:
    def test_cancel_queued_job(self):
        store = Store(":memory:")
        # No workers running: the job stays queued until cancelled.
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            job = mgr.submit(SCALE_SPEC)
            cancelled = mgr.cancel(job["id"])
            assert cancelled["state"] == store_mod.CANCELLED
            assert "before start" in cancelled["error"]
        finally:
            mgr.shutdown()
            store.close()

    def test_cancelled_queued_job_is_skipped_by_workers(self):
        store = Store(":memory:")
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            job = mgr.submit(SCALE_SPEC)
            mgr.cancel(job["id"])
            mgr.start()  # workers now drain the queue
            time.sleep(0.3)
            assert store.get_job(job["id"])["state"] == \
                store_mod.CANCELLED
            assert store.record_count(job["id"]) == 0
        finally:
            mgr.shutdown()
            store.close()

    def test_cancel_running_job(self, manager):
        # A long grid: many ~0.1s cells, cancelled after the first few.
        spec = {"scenario": "churn", "seeds": list(range(40)),
                "set": {"duration": [120], "protocols": ["arppath"]}}
        job = manager.submit(spec)
        deadline = time.monotonic() + 30
        while manager.store.get_job(job["id"])["state"] == \
                store_mod.QUEUED and time.monotonic() < deadline:
            time.sleep(0.01)
        manager.cancel(job["id"])
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.CANCELLED
        assert done["cells_done"] < done["cells_total"]

    def test_cancel_unknown_job_returns_none(self, manager):
        assert manager.cancel(12345) is None


class TestTimeout:
    def test_job_timeout_marks_failed(self, manager):
        # 40 cells of ~0.1s each against a 0.2s budget: the deadline
        # trips long before the grid can finish.
        spec = {"scenario": "churn", "seeds": list(range(40)),
                "set": {"duration": [120], "protocols": ["arppath"]},
                "timeout": 0.2}
        job = manager.submit(spec)
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.FAILED
        assert "timeout" in done["error"]
        assert "budget" in done["error"]
        assert done["cells_done"] < done["cells_total"]


class TestShutdownAndRecovery:
    def test_shutdown_cancels_running_jobs(self):
        store = Store(":memory:")
        mgr = JobManager(store, workers=1, pool_jobs=1)
        mgr.start()
        spec = {"scenario": "churn", "seeds": list(range(40)),
                "set": {"duration": [120], "protocols": ["arppath"]}}
        job = mgr.submit(spec)
        deadline = time.monotonic() + 30
        while store.get_job(job["id"])["state"] == store_mod.QUEUED \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        mgr.shutdown(drain=False, grace=10.0)
        final = store.get_job(job["id"])
        assert final["state"] == store_mod.CANCELLED
        store.close()

    def test_restart_requeues_queued_jobs(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        store = Store(db)
        # Workers never started: the submission stays queued on disk.
        mgr = JobManager(store, workers=1, pool_jobs=1)
        job = mgr.submit(SCALE_SPEC)
        store.close()

        store = Store(db)
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            recovered = mgr.start()
            assert recovered["requeued"] == [job["id"]]
            done = wait_terminal(store, job["id"])
            assert done["state"] == store_mod.COMPLETED
        finally:
            mgr.shutdown()
            store.close()

    def test_stats_counters(self, manager):
        job = manager.submit(SCALE_SPEC)
        wait_terminal(manager.store, job["id"])
        # worker bookkeeping (counter bump) may trail the DB write
        deadline = time.monotonic() + 5
        while manager.stats()["jobs_completed"] < 1 and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        stats = manager.stats()
        assert stats["jobs_completed"] >= 1
        assert stats["cells_completed"] >= 2
        assert stats["workers"] == 2


def serial_reference(raw_spec):
    """The fault-free record stream + summary rows for *raw_spec*."""
    spec = jobs_mod.validate_submission(raw_spec)
    cells = jobs_mod.spec_cells(spec)
    report = runner.SweepReport(cells=sorted(
        runner.SweepRunner(cells, jobs=1).stream(),
        key=lambda r: r.cell.index))
    lines = [record_line(row) for row in report.rows()]
    return spec, cells, lines, report


class TestResumeFromCheckpoint:
    def test_resumed_job_records_byte_identical(self, tmp_path):
        # Fabricate the exact on-disk state a SIGKILL'd daemon leaves:
        # a RUNNING job whose first cell was flushed atomically with
        # the checkpoint, nothing else. The restarted manager must run
        # only the remaining cell and close the stream byte-identical
        # to an uninterrupted run.
        spec, cells, reference, report = serial_reference(SCALE_SPEC)
        first_cell_lines = [record_line(row)
                            for row in report.cells[0].rows]
        db = str(tmp_path / "jobs.db")
        store = Store(db)
        job_id = store.create_job(spec, cells_total=len(cells))
        store.set_running(job_id, cells_total=len(cells))
        store.append_records(job_id, first_cell_lines, cell_index=0,
                             cells_flushed=1)
        store.close()  # the daemon dies here

        store = Store(db)
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            recovered = mgr.start()
            assert recovered["resumed"] == [job_id]
            done = wait_terminal(store, job_id)
            assert done["state"] == store_mod.COMPLETED
            assert done["resumes"] == 1
            assert done["cells_flushed"] == len(cells)
            assert store.fetch_records(job_id) == reference
            # the summary aggregates recovered + fresh cells alike
            summary = store.get_summary(job_id)
            assert summary["summary"] == \
                report.as_payload()["summary"]
            assert mgr.stats()["jobs_resumed"] == 1
        finally:
            mgr.shutdown()
            store.close()

    def test_resumed_job_with_zero_flushed_cells_runs_fully(self,
                                                            tmp_path):
        spec, cells, reference, _ = serial_reference(SCALE_SPEC)
        db = str(tmp_path / "jobs.db")
        store = Store(db)
        job_id = store.create_job(spec, cells_total=len(cells))
        store.set_running(job_id, cells_total=len(cells))
        store.close()  # died before any flush

        store = Store(db)
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            assert mgr.start()["resumed"] == [job_id]
            done = wait_terminal(store, job_id)
            assert done["state"] == store_mod.COMPLETED
            assert store.fetch_records(job_id) == reference
        finally:
            mgr.shutdown()
            store.close()


class TestRetriesAndChaos:
    def run_with_hook(self, raw_spec, hook, pool_jobs=1,
                      write_fault=None):
        store = Store(":memory:")
        if write_fault is not None:
            store.write_fault = write_fault
        mgr = JobManager(store, workers=1, pool_jobs=pool_jobs,
                         cell_hook=hook)
        mgr.start()
        try:
            job = mgr.submit(raw_spec)
            done = wait_terminal(store, job["id"])
            return done, store.fetch_records(job["id"]), mgr.stats()
        finally:
            mgr.shutdown(drain=False, grace=2.0)
            store.close()

    def test_transient_cell_fault_retried_to_byte_parity(self):
        from repro.chaos import RaiseError
        _, _, reference, _ = serial_reference(SCALE_SPEC)
        done, records, stats = self.run_with_hook(
            dict(SCALE_SPEC, retries=1),
            RaiseError(cell_index=0, failures=1))
        assert done["state"] == store_mod.COMPLETED
        assert records == reference
        assert stats["cells_retried"] >= 1

    def test_worker_crash_surfaces_named_error(self):
        from repro.chaos import KillWorker
        _, _, _, report = serial_reference(SCALE_SPEC)
        done, records, _ = self.run_with_hook(
            dict(SCALE_SPEC, jobs=2),
            KillWorker(cell_index=0, kills=1), pool_jobs=2)
        assert done["state"] == store_mod.FAILED
        assert "WorkerCrashError" in done["error"]
        assert "cell " in done["error"]
        # a partial sweep still returns every good row: the crashed
        # cell flushes empty and the surviving cell's records follow
        assert done["cells_flushed"] == 2
        assert records == [record_line(row)
                           for row in report.cells[1].rows]

    def test_worker_crash_retried_to_byte_parity(self):
        from repro.chaos import KillWorker
        _, _, reference, _ = serial_reference(SCALE_SPEC)
        done, records, stats = self.run_with_hook(
            dict(SCALE_SPEC, jobs=2, retries=1),
            KillWorker(cell_index=1, kills=1), pool_jobs=2)
        assert done["state"] == store_mod.COMPLETED
        assert records == reference
        assert stats["cells_retried"] >= 1

    def test_store_write_faults_absorbed_by_retry(self):
        from repro.chaos import FlakyWrites
        _, _, reference, _ = serial_reference(SCALE_SPEC)
        flaky = FlakyWrites(fail_on={1})
        done, records, stats = self.run_with_hook(
            SCALE_SPEC, None, write_fault=flaky)
        assert done["state"] == store_mod.COMPLETED
        assert flaky.failures == 1
        assert records == reference
        assert stats["store_write_retries"] >= 1

    def test_validate_rejects_bad_retries(self):
        for bad in (-1, 11, True, "2", 1.5):
            with pytest.raises(registry.SubmissionError):
                jobs_mod.validate_submission(
                    dict(SCALE_SPEC, retries=bad))
        spec = jobs_mod.validate_submission(dict(SCALE_SPEC, retries=3))
        assert spec["retries"] == 3
        assert jobs_mod.validate_submission(SCALE_SPEC)["retries"] == 0
