"""JobManager: queue workers, determinism, cancel/timeout/crash paths.

These run the real scenario grids (tiny ones) through the real
SweepRunner — no mocks — so the determinism contract asserted here is
the one the HTTP API exposes.
"""

import time

import pytest

from repro.experiments import registry, runner
from repro.metrics.report import record_line
from repro.server import jobs as jobs_mod
from repro.server import store as store_mod
from repro.server.jobs import JobManager
from repro.server.store import Store

registry.load_all()

#: Small, fast grid used by most tests: 2 seeds x 1 cell each.
SCALE_SPEC = {"scenario": "scale", "seeds": [0, 1],
              "set": {"sizes": [9], "protocols": ["arppath"],
                      "pairs": [1], "probes": [1]}}

#: Deterministically failing grid: the learning bridge refuses loopy
#: topologies, so this cell raises inside the worker.
FAILING_SPEC = {"scenario": "churn", "seeds": [0],
                "set": {"topology": ["demo"], "protocols": ["learning"],
                        "duration": [1]}}


def wait_terminal(store, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = store.get_job(job_id)
        if job["state"] in store_mod.TERMINAL:
            return job
        time.sleep(0.02)
    raise AssertionError(
        f"job {job_id} not terminal after {timeout}s: "
        f"{store.get_job(job_id)}")


@pytest.fixture
def manager():
    store = Store(":memory:")
    mgr = JobManager(store, workers=2, pool_jobs=1)
    mgr.start()
    yield mgr
    mgr.shutdown()
    store.close()


class TestHappyPath:
    def test_job_completes_with_records_and_summary(self, manager):
        job = manager.submit(SCALE_SPEC)
        assert job["state"] == store_mod.QUEUED
        assert job["cells_total"] == 2
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.COMPLETED
        assert done["cells_done"] == 2
        assert done["record_count"] > 0
        summary = manager.store.get_summary(job["id"])
        assert summary is not None
        assert "rows" not in summary  # rows live in the record store
        assert summary["summary"]

    def test_records_byte_identical_to_direct_sweep(self, manager):
        # The acceptance criterion: the stored record stream equals an
        # in-process SweepRunner run of the same grid, byte for byte.
        job = manager.submit(SCALE_SPEC)
        wait_terminal(manager.store, job["id"])
        stored = manager.store.fetch_records(job["id"])

        spec = jobs_mod.validate_submission(SCALE_SPEC)
        cells = jobs_mod.spec_cells(spec)
        report = runner.SweepReport(cells=sorted(
            runner.SweepRunner(cells, jobs=1).stream(),
            key=lambda r: r.cell.index))
        direct = [record_line(row) for row in report.rows()]
        assert stored == direct

    def test_concurrent_jobs_do_not_mix_records(self, manager):
        first = manager.submit(SCALE_SPEC)
        second = manager.submit(dict(SCALE_SPEC, seeds=[2]))
        wait_terminal(manager.store, first["id"])
        wait_terminal(manager.store, second["id"])
        seeds_a = {line.rsplit(":", 1)[-1]
                   for line in manager.store.fetch_records(first["id"])}
        assert manager.store.record_count(second["id"]) > 0
        assert seeds_a  # sanity: records landed under the right job

    def test_invalid_submission_never_creates_a_job(self, manager):
        with pytest.raises(registry.SubmissionError):
            manager.submit({"scenario": "scale", "set": {"bogus": [1]}})
        assert manager.store.list_jobs() == []


class TestFailureSurfacing:
    def test_cell_crash_marks_job_failed_with_traceback(self, manager):
        job = manager.submit(FAILING_SPEC)
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.FAILED
        assert "cell " in done["error"]
        assert "Traceback" in done["error"]
        assert "ValueError" in done["error"]

    def test_failed_job_does_not_wedge_the_queue(self, manager):
        bad = manager.submit(FAILING_SPEC)
        good = manager.submit(SCALE_SPEC)
        assert wait_terminal(manager.store, bad["id"])["state"] == \
            store_mod.FAILED
        assert wait_terminal(manager.store, good["id"])["state"] == \
            store_mod.COMPLETED


class TestCancellation:
    def test_cancel_queued_job(self):
        store = Store(":memory:")
        # No workers running: the job stays queued until cancelled.
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            job = mgr.submit(SCALE_SPEC)
            cancelled = mgr.cancel(job["id"])
            assert cancelled["state"] == store_mod.CANCELLED
            assert "before start" in cancelled["error"]
        finally:
            mgr.shutdown()
            store.close()

    def test_cancelled_queued_job_is_skipped_by_workers(self):
        store = Store(":memory:")
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            job = mgr.submit(SCALE_SPEC)
            mgr.cancel(job["id"])
            mgr.start()  # workers now drain the queue
            time.sleep(0.3)
            assert store.get_job(job["id"])["state"] == \
                store_mod.CANCELLED
            assert store.record_count(job["id"]) == 0
        finally:
            mgr.shutdown()
            store.close()

    def test_cancel_running_job(self, manager):
        # A long grid: many ~0.1s cells, cancelled after the first few.
        spec = {"scenario": "churn", "seeds": list(range(40)),
                "set": {"duration": [120], "protocols": ["arppath"]}}
        job = manager.submit(spec)
        deadline = time.monotonic() + 30
        while manager.store.get_job(job["id"])["state"] == \
                store_mod.QUEUED and time.monotonic() < deadline:
            time.sleep(0.01)
        manager.cancel(job["id"])
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.CANCELLED
        assert done["cells_done"] < done["cells_total"]

    def test_cancel_unknown_job_returns_none(self, manager):
        assert manager.cancel(12345) is None


class TestTimeout:
    def test_job_timeout_marks_failed(self, manager):
        # 40 cells of ~0.1s each against a 0.2s budget: the deadline
        # trips long before the grid can finish.
        spec = {"scenario": "churn", "seeds": list(range(40)),
                "set": {"duration": [120], "protocols": ["arppath"]},
                "timeout": 0.2}
        job = manager.submit(spec)
        done = wait_terminal(manager.store, job["id"])
        assert done["state"] == store_mod.FAILED
        assert "timeout" in done["error"]
        assert "budget" in done["error"]
        assert done["cells_done"] < done["cells_total"]


class TestShutdownAndRecovery:
    def test_shutdown_cancels_running_jobs(self):
        store = Store(":memory:")
        mgr = JobManager(store, workers=1, pool_jobs=1)
        mgr.start()
        spec = {"scenario": "churn", "seeds": list(range(40)),
                "set": {"duration": [120], "protocols": ["arppath"]}}
        job = mgr.submit(spec)
        deadline = time.monotonic() + 30
        while store.get_job(job["id"])["state"] == store_mod.QUEUED \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        mgr.shutdown(drain=False, grace=10.0)
        final = store.get_job(job["id"])
        assert final["state"] == store_mod.CANCELLED
        store.close()

    def test_restart_requeues_queued_jobs(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        store = Store(db)
        # Workers never started: the submission stays queued on disk.
        mgr = JobManager(store, workers=1, pool_jobs=1)
        job = mgr.submit(SCALE_SPEC)
        store.close()

        store = Store(db)
        mgr = JobManager(store, workers=1, pool_jobs=1)
        try:
            recovered = mgr.start()
            assert recovered["requeued"] == [job["id"]]
            done = wait_terminal(store, job["id"])
            assert done["state"] == store_mod.COMPLETED
        finally:
            mgr.shutdown()
            store.close()

    def test_stats_counters(self, manager):
        job = manager.submit(SCALE_SPEC)
        wait_terminal(manager.store, job["id"])
        # worker bookkeeping (counter bump) may trail the DB write
        deadline = time.monotonic() + 5
        while manager.stats()["jobs_completed"] < 1 and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        stats = manager.stats()
        assert stats["jobs_completed"] >= 1
        assert stats["cells_completed"] >= 2
        assert stats["workers"] == 2
