"""Tests for the ASCII charts."""

import pytest

from repro.metrics.chart import histogram, sparkline, timeseries


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0, 100])
        assert line[0] == "▁" and line[-1] == "█"

    def test_resampling_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=10)) == 2


class TestTimeseries:
    def test_empty(self):
        assert timeseries([]) == "(no data)"

    def test_dimensions(self):
        points = [(float(i), float(i % 3)) for i in range(20)]
        chart = timeseries(points, width=30, height=5)
        lines = chart.split("\n")
        assert len(lines) == 5 + 2  # rows + axis + tick labels

    def test_label_included(self):
        chart = timeseries([(0.0, 1.0)], label="rtt")
        assert chart.startswith("rtt")

    def test_contains_points(self):
        chart = timeseries([(0.0, 0.0), (1.0, 1.0)], width=10, height=4)
        assert chart.count("*") == 2

    def test_axis_bounds_rendered(self):
        chart = timeseries([(2.0, 5.0), (4.0, 9.0)])
        assert "2" in chart and "4" in chart
        assert "9" in chart and "5" in chart


class TestHistogram:
    def test_empty(self):
        assert histogram([]) == "(no data)"

    def test_bin_count(self):
        lines = histogram([1, 2, 3, 4, 5], bins=5).split("\n")
        assert len(lines) == 5

    def test_counts_sum(self):
        values = [1, 1, 2, 3, 3, 3]
        lines = histogram(values, bins=3).split("\n")
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == len(values)

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_peak_has_longest_bar(self):
        lines = histogram([1, 1, 1, 1, 5], bins=2).split("\n")
        bars = [line.count("#") for line in lines]
        assert bars[0] > bars[1]
