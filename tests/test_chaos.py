"""Deterministic chaos harness: crash isolation, retries, parity.

The acceptance bar across this module: the records that survive any
injected fault sequence are byte-identical to the fault-free run's
records. Faults target the execution machinery (pool workers, store
writes), never the simulated network.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (ChaosParityError, FaultSet, KillWorker,
                         RaiseError, check_parity, first_divergence,
                         run_lines, seeded_plan)
from repro.experiments import registry, runner
from repro.experiments.runner import (FAILED_PERMANENT, OK,
                                      backoff_schedule)

registry.load_all()

#: The cheapest real grid: 4 cells of the tiny proxy case.
CELLS = runner.expand_grid(["proxy"], seeds=[0, 1, 2, 3],
                           axes={"rows": [2], "cols": [2],
                                 "rounds": [1]})


@pytest.fixture(scope="module")
def reference():
    lines, report = run_lines(CELLS)
    assert report.ok
    return lines


class TestBackoffSchedule:
    @given(retries=st.integers(0, 12), seed=st.integers(0, 2**31),
           cell_index=st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_deterministic_and_monotone(self, retries, seed, cell_index):
        first = backoff_schedule(retries, seed=seed,
                                 cell_index=cell_index)
        again = backoff_schedule(retries, seed=seed,
                                 cell_index=cell_index)
        assert first == again  # pure function of its arguments
        assert len(first) == retries
        assert all(later >= earlier for earlier, later
                   in zip(first, first[1:]))

    @given(retries=st.integers(1, 12),
           base=st.floats(0.001, 1.0),
           cap=st.floats(0.001, 10.0),
           seed=st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_bounded_by_base_and_cap(self, retries, base, cap, seed):
        delays = backoff_schedule(retries, base=base, cap=cap, seed=seed)
        assert all(delay <= cap for delay in delays)
        assert delays[0] >= min(base, cap)

    def test_different_cells_jitter_differently(self):
        schedules = {tuple(backoff_schedule(5, cell_index=index))
                     for index in range(8)}
        assert len(schedules) > 1


class TestSerialRetries:
    def test_transient_fault_retried_with_identical_rows(self, reference):
        hook = RaiseError(cell_index=1, failures=1)
        lines, report = run_lines(CELLS, retries=1, cell_hook=hook)
        assert report.ok
        retried = {result.cell.index for result in report.retried}
        assert retried == {1}
        by_index = {r.cell.index: r for r in report.cells}
        assert by_index[1].attempts == 2
        assert by_index[0].attempts == 1
        check_parity(reference, lines, "serial retry")

    def test_exhausted_budget_is_failed_permanent(self):
        hook = RaiseError(cell_index=0, failures=5)
        _, report = run_lines(CELLS, retries=2, cell_hook=hook)
        failed = {r.cell.index: r for r in report.permanent_failures}
        assert set(failed) == {0}
        assert failed[0].status == FAILED_PERMANENT
        assert failed[0].attempts == 3
        assert "injected transient fault" in failed[0].error
        # every other cell still returned its rows
        assert all(r.status == OK for r in report.cells
                   if r.cell.index != 0)

    def test_zero_retries_fails_on_first_fault(self):
        hook = RaiseError(cell_index=2, failures=1)
        _, report = run_lines(CELLS, cell_hook=hook)
        assert [r.cell.index for r in report.permanent_failures] == [2]
        assert report.attempts == len(CELLS)


class TestPoolCrashIsolation:
    def test_worker_kill_retried_to_identical_rows(self, reference):
        hook = KillWorker(cell_index=2, kills=1)
        lines, report = run_lines(CELLS, jobs=2, retries=1,
                                  cell_hook=hook)
        assert report.ok
        assert {r.cell.index for r in report.retried} == {2}
        check_parity(reference, lines, "pool kill retry")

    def test_crash_without_retries_names_the_cell(self):
        hook = KillWorker(cell_index=1, kills=1, exit_code=137)
        _, report = run_lines(CELLS, jobs=2, cell_hook=hook)
        failed = {r.cell.index: r for r in report.permanent_failures}
        assert set(failed) == {1}
        error = failed[0] if 0 in failed else failed[1]
        assert error.error.startswith("WorkerCrashError:")
        assert CELLS[1].label() in error.error
        assert "exitcode 137" in error.error
        # the other cells survived the crash untouched
        good = [r for r in report.cells if r.cell.index != 1]
        assert all(r.ok for r in good)

    def test_seeded_plan_parity(self, reference):
        plan = seeded_plan(seed=7, cells_total=len(CELLS), kills=1,
                           errors=1)
        lines, report = run_lines(CELLS, jobs=2, retries=1,
                                  cell_hook=plan)
        assert report.ok
        assert len(report.retried) == 2
        check_parity(reference, lines, "seeded plan")

    def test_seeded_plan_is_deterministic(self):
        def shape(plan: FaultSet):
            return [(type(fault).__name__, fault.cell_index)
                    for fault in plan.faults]
        assert shape(seeded_plan(3, 10)) == shape(seeded_plan(3, 10))
        assert shape(seeded_plan(3, 10)) != shape(seeded_plan(4, 10))

    def test_repeated_kill_exhausts_pool_budget(self):
        hook = KillWorker(cell_index=0, kills=3)
        _, report = run_lines(CELLS, jobs=2, retries=1, cell_hook=hook)
        failed = {r.cell.index: r for r in report.permanent_failures}
        assert set(failed) == {0}
        assert failed[0].attempts == 2
        assert failed[0].error.startswith("WorkerCrashError:")


class TestParityHelpers:
    def test_first_divergence(self):
        assert first_divergence(["a", "b"], ["a", "b"]) is None
        assert first_divergence(["a", "b"], ["a", "c"]) == 1
        assert first_divergence(["a"], ["a", "b"]) == 1
        assert first_divergence(["a", "b"], ["a"]) == 1

    def test_check_parity_raises_with_context(self):
        with pytest.raises(ChaosParityError, match="my context.*line 0"):
            check_parity(['{"a":1}'], ['{"a":2}'], "my context")
