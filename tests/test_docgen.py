"""docs/API.md generation: deterministic render + the CI drift gate.

``test_committed_doc_is_current`` is the tier-1 twin of the CI docs
job: change a Param spec without regenerating docs/API.md and this
fails locally before CI ever sees it.
"""

import os

from repro.experiments import registry
from repro.server import docgen

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC = os.path.join(REPO_ROOT, "docs", "API.md")


class TestRender:
    def test_render_is_deterministic(self):
        assert docgen.render() == docgen.render()

    def test_every_scenario_gets_a_section(self):
        content = docgen.render()
        registry.load_all()
        for scenario in registry.all_scenarios():
            assert f"### `{scenario.name}` — {scenario.title}" \
                in content

    def test_every_param_appears_in_its_table(self):
        content = docgen.render()
        for scenario in registry.all_scenarios():
            for param in scenario.params:
                assert f"| `{param.name}` |" in content

    def test_header_marks_the_file_generated(self):
        content = docgen.render()
        assert "Generated file — do not edit by hand" in content
        assert "docgen --check" in content

    def test_envelope_documents_required_scenario(self):
        content = docgen.render()
        assert "| `scenario` | string | yes |" in content


class TestDriftGate:
    def test_committed_doc_is_current(self):
        # The committed docs/API.md must equal a fresh render; if this
        # fails, run `python -m repro.server.docgen --write`.
        with open(DOC) as handle:
            committed = handle.read()
        assert committed == docgen.render(), \
            "docs/API.md drifted — run " \
            "`python -m repro.server.docgen --write`"

    def test_check_mode_passes_on_committed_doc(self):
        assert docgen.main(["--check", "--doc", DOC]) == 0

    def test_check_mode_fails_on_tampered_doc(self, tmp_path, capsys):
        tampered = tmp_path / "API.md"
        tampered.write_text(docgen.render() + "\nstray edit\n")
        assert docgen.main(["--check", "--doc", str(tampered)]) == 1
        assert "drifted" in capsys.readouterr().err

    def test_check_mode_fails_on_missing_doc(self, tmp_path):
        missing = tmp_path / "API.md"
        assert docgen.main(["--check", "--doc", str(missing)]) == 1

    def test_write_mode_round_trips(self, tmp_path):
        doc = tmp_path / "API.md"
        assert docgen.main(["--write", "--doc", str(doc)]) == 0
        assert docgen.main(["--check", "--doc", str(doc)]) == 0
