"""Tests for the host-side ARP cache."""

import pytest

from repro.frames.ipv4 import ip_for_host
from repro.frames.mac import mac_for_host
from repro.hosts.arpcache import ArpCache

IP0, IP1 = ip_for_host(0), ip_for_host(1)
M0, M1 = mac_for_host(0), mac_for_host(1)


class TestLookups:
    def test_miss_returns_none(self):
        cache = ArpCache()
        assert cache.lookup(IP0, now=0.0) is None

    def test_insert_then_hit(self):
        cache = ArpCache()
        cache.insert(IP0, M0, now=0.0)
        assert cache.lookup(IP0, now=1.0) == M0

    def test_expiry(self):
        cache = ArpCache(timeout=10.0)
        cache.insert(IP0, M0, now=0.0)
        assert cache.lookup(IP0, now=10.0) is None

    def test_refresh_extends(self):
        cache = ArpCache(timeout=10.0)
        cache.insert(IP0, M0, now=0.0)
        cache.insert(IP0, M0, now=8.0)
        assert cache.lookup(IP0, now=15.0) == M0

    def test_rebinding_updates_mac(self):
        cache = ArpCache()
        cache.insert(IP0, M0, now=0.0)
        cache.insert(IP0, M1, now=1.0)
        assert cache.lookup(IP0, now=2.0) == M1

    def test_invalidate(self):
        cache = ArpCache()
        cache.insert(IP0, M0, now=0.0)
        cache.invalidate(IP0)
        assert cache.lookup(IP0, now=0.0) is None

    def test_flush(self):
        cache = ArpCache()
        cache.insert(IP0, M0, now=0.0)
        cache.insert(IP1, M1, now=0.0)
        cache.flush()
        assert len(cache) == 0

    def test_contains_and_len(self):
        cache = ArpCache()
        cache.insert(IP0, M0, now=0.0)
        assert IP0 in cache and IP1 not in cache
        assert len(cache) == 1

    def test_hit_counters(self):
        cache = ArpCache()
        cache.insert(IP0, M0, now=0.0)
        cache.lookup(IP0, now=0.0)
        cache.lookup(IP1, now=0.0)
        assert cache.lookups == 2 and cache.hits == 1


class TestPendingQueue:
    def test_park_and_take(self):
        cache = ArpCache()
        cache.park(IP0, "packet-1")
        cache.park(IP0, "packet-2")
        assert cache.take_pending(IP0) == ["packet-1", "packet-2"]
        assert cache.take_pending(IP0) == []

    def test_overflow_drops(self):
        cache = ArpCache(max_pending_per_ip=2)
        for index in range(4):
            cache.park(IP0, index)
        assert cache.take_pending(IP0) == [0, 1]
        assert cache.dropped_pending == 2

    def test_abandon_counts_drops(self):
        cache = ArpCache()
        cache.park(IP0, "a")
        cache.park(IP0, "b")
        assert cache.abandon(IP0) == 2
        assert cache.dropped_pending == 2

    def test_abandon_unknown_is_zero(self):
        cache = ArpCache()
        assert cache.abandon(IP0) == 0

    def test_pending_for(self):
        cache = ArpCache()
        assert cache.pending_for(IP0) is None
        cache.park(IP0, "a")
        assert cache.pending_for(IP0) is not None

    def test_pending_ips(self):
        cache = ArpCache()
        cache.park(IP0, "a")
        cache.park(IP1, "b")
        assert set(cache.pending_ips) == {IP0, IP1}

    def test_take_cancels_retry_event(self):
        class FakeEvent:
            cancelled = False

            def cancel(self):
                self.cancelled = True

        cache = ArpCache()
        pending = cache.park(IP0, "a")
        pending.retry_event = FakeEvent()
        cache.take_pending(IP0)
        assert pending.retry_event.cancelled
