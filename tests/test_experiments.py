"""Smoke tests for the experiment modules (small, fast variants).

Each test checks the experiment runs and its result has the *shape* the
paper reports — who wins and roughly by how much. The full-size runs
live in benchmarks/.
"""

import pytest

from repro.experiments import (ablations, broadcast, fig2_latency,
                               fig3_repair, loadbalance, loopfree, stretch)
from repro.experiments.common import spec


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_latency.run(
            probes=5, protocols=[spec("arppath"),
                                 spec("stp", stp_scale=0.1)])

    def test_both_protocols_measured(self, result):
        assert {row.protocol.split("(")[0] for row in result.rows} \
            == {"arppath", "stp"}

    def test_arppath_wins(self, result):
        by_name = {row.protocol.split("(")[0]: row for row in result.rows}
        assert by_name["arppath"].rtt.mean < by_name["stp"].rtt.mean

    def test_speedup_at_least_5x(self, result):
        assert result.speedup() > 5

    def test_arppath_path_avoids_cross(self, result):
        arp_row = next(r for r in result.rows if r.protocol == "arppath")
        assert arp_row.bridge_path in (("NF1", "NF2", "NF3"),
                                       ("NF1", "NF4", "NF3"))

    def test_stp_path_uses_cross(self, result):
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert stp_row.bridge_path == ("NF1", "NF3")

    def test_no_losses(self, result):
        assert all(row.losses == 0 for row in result.rows)

    def test_table_renders(self, result):
        table = result.table()
        assert "arppath" in table and "rtt_mean_us" in table


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_repair.run(failures=2, seed=0)

    def test_all_failures_hit_a_link(self, result):
        for row in result.rows:
            assert all(o.link is not None for o in row.outcomes)

    def test_arppath_outage_sub_frame_interval(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        for outcome in arp.outcomes:
            assert outcome.outage is not None
            assert outcome.outage < 0.1

    def test_arppath_no_chunk_loss(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert arp.delivery_rate == 1.0

    def test_stp_outage_orders_slower(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        worst_arp = max(o.outage for o in arp.outcomes)
        worst_stp = max(o.outage for o in stp_row.outcomes)
        assert worst_stp / worst_arp > 100

    def test_repair_times_recorded(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert len(arp.bridge_repair_times) == 2

    def test_table_renders(self, result):
        assert "outage_ms" in result.table()


class TestStretch:
    @pytest.fixture(scope="class")
    def result(self):
        return stretch.run(n_bridges=7, hosts=3, seeds=[0],
                           protocols=[spec("arppath"),
                                      spec("stp", stp_scale=0.1)])

    def test_arppath_is_optimal(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert arp.optimal_fraction == 1.0

    def test_stp_is_worse(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert stp_row.summary().mean >= arp.summary().mean

    def test_table_renders(self, result):
        assert "stretch_mean" in result.table()


class TestLoopfree:
    @pytest.fixture(scope="class")
    def result(self):
        return loopfree.run(topologies=["ring"],
                            protocols=[spec("arppath"),
                                       spec("stp", stp_scale=0.1)])

    def test_no_duplicates_no_storm(self, result):
        for row in result.rows:
            assert row.duplicate_deliveries == 0
            assert not row.storm

    def test_arppath_uses_more_links_than_stp(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert arp.used_links >= stp_row.used_links
        assert stp_row.used_links < stp_row.total_links  # blocked links

    def test_arppath_uses_all_ring_links(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert arp.used_links == arp.total_links


class TestBroadcastSuppression:
    @pytest.fixture(scope="class")
    def result(self):
        return broadcast.run(rows=2, cols=2, rounds=2)

    def test_proxy_reduces_arp_traffic(self, result):
        assert result.reduction() > 1.5

    def test_no_resolution_failures(self, result):
        for row in result.rows:
            assert row.resolution_failures == 0

    def test_proxy_answers_counted(self, result):
        on = next(r for r in result.rows if r.proxy)
        assert on.proxy_answers > 0


class TestLoadBalance:
    @pytest.fixture(scope="class")
    def result(self):
        return loadbalance.run(pods=4, hosts_per_edge=1, packets=20,
                               protocols=[spec("arppath"),
                                          spec("stp", stp_scale=0.1)])

    def test_everything_delivered(self, result):
        for row in result.rows:
            assert row.delivery_rate == 1.0

    def test_arppath_spreads_load(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert arp.report.used_links > stp_row.report.used_links
        assert arp.report.cv < stp_row.report.cv


class TestOccupancy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import occupancy
        return occupancy.run(host_counts=[1, 2], sparse_pairs=4)

    def test_arppath_state_tracks_traffic(self, result):
        sparse = [r for r in result.rows
                  if r.protocol == "arppath (sparse)"]
        assert len(sparse) >= 2
        # Sparse traffic: table size stays flat as hosts double.
        assert sparse[-1].peak_entries_per_bridge \
            <= sparse[0].peak_entries_per_bridge + 2

    def test_spb_state_tracks_network(self, result):
        spb_rows = [r for r in result.rows if r.protocol == "spb"]
        assert spb_rows[-1].peak_entries_per_bridge \
            > spb_rows[0].peak_entries_per_bridge

    def test_table_renders(self, result):
        assert "peak_state/bridge" in result.table()


class TestAblations:
    def test_lock_timeout_sweep_shape(self):
        rows = ablations.sweep_lock_timeout(timeouts=[0.0002, 0.8])
        short, normal = rows
        assert short.relocks > normal.relocks
        assert normal.losses == 0

    def test_repair_buffer_sweep_shape(self):
        rows = ablations.sweep_repair_buffer(sizes=[0, 32])
        without, with_buffer = rows
        assert without.chunks_lost > with_buffer.chunks_lost
        assert with_buffer.buffered > 0

    def test_hello_sweep_shape(self):
        rows = ablations.sweep_hello()
        dynamic, static, none = rows
        assert dynamic.repaired and static.repaired
        assert not none.repaired
