"""Smoke tests for the experiment modules (small, fast variants).

Each test checks the experiment runs and its result has the *shape* the
paper reports — who wins and roughly by how much. The full-size runs
live in benchmarks/.
"""

import pytest

from repro.experiments import (ablations, broadcast, fig2_latency,
                               fig3_repair, loadbalance, loopfree, stretch)
from repro.experiments.common import spec


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_latency.run(
            probes=5, protocols=[spec("arppath"),
                                 spec("stp", stp_scale=0.1)])

    def test_both_protocols_measured(self, result):
        assert {row.protocol.split("(")[0] for row in result.rows} \
            == {"arppath", "stp"}

    def test_arppath_wins(self, result):
        by_name = {row.protocol.split("(")[0]: row for row in result.rows}
        assert by_name["arppath"].rtt.mean < by_name["stp"].rtt.mean

    def test_speedup_at_least_5x(self, result):
        assert result.speedup() > 5

    def test_arppath_path_avoids_cross(self, result):
        arp_row = next(r for r in result.rows if r.protocol == "arppath")
        assert arp_row.bridge_path in (("NF1", "NF2", "NF3"),
                                       ("NF1", "NF4", "NF3"))

    def test_stp_path_uses_cross(self, result):
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert stp_row.bridge_path == ("NF1", "NF3")

    def test_no_losses(self, result):
        assert all(row.losses == 0 for row in result.rows)

    def test_table_renders(self, result):
        table = result.table()
        assert "arppath" in table and "rtt_mean_us" in table


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_repair.run(failures=2, seed=0)

    def test_all_failures_hit_a_link(self, result):
        for row in result.rows:
            assert all(o.link is not None for o in row.outcomes)

    def test_arppath_outage_sub_frame_interval(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        for outcome in arp.outcomes:
            assert outcome.outage is not None
            assert outcome.outage < 0.1

    def test_arppath_no_chunk_loss(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert arp.delivery_rate == 1.0

    def test_stp_outage_orders_slower(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        worst_arp = max(o.outage for o in arp.outcomes)
        worst_stp = max(o.outage for o in stp_row.outcomes)
        assert worst_stp / worst_arp > 100

    def test_repair_times_recorded(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert len(arp.bridge_repair_times) == 2

    def test_table_renders(self, result):
        assert "outage_ms" in result.table()


class TestStretch:
    @pytest.fixture(scope="class")
    def result(self):
        return stretch.run(n_bridges=7, hosts=3, seeds=[0],
                           protocols=[spec("arppath"),
                                      spec("stp", stp_scale=0.1)])

    def test_arppath_is_optimal(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert arp.optimal_fraction == 1.0

    def test_stp_is_worse(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert stp_row.summary().mean >= arp.summary().mean

    def test_table_renders(self, result):
        assert "stretch_mean" in result.table()


class TestLoopfree:
    @pytest.fixture(scope="class")
    def result(self):
        return loopfree.run(topologies=["ring"],
                            protocols=[spec("arppath"),
                                       spec("stp", stp_scale=0.1)])

    def test_no_duplicates_no_storm(self, result):
        for row in result.rows:
            assert row.duplicate_deliveries == 0
            assert not row.storm

    def test_arppath_uses_more_links_than_stp(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert arp.used_links >= stp_row.used_links
        assert stp_row.used_links < stp_row.total_links  # blocked links

    def test_arppath_uses_all_ring_links(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        assert arp.used_links == arp.total_links


class TestBroadcastSuppression:
    @pytest.fixture(scope="class")
    def result(self):
        return broadcast.run(rows=2, cols=2, rounds=2)

    def test_proxy_reduces_arp_traffic(self, result):
        assert result.reduction() > 1.5

    def test_no_resolution_failures(self, result):
        for row in result.rows:
            assert row.resolution_failures == 0

    def test_proxy_answers_counted(self, result):
        on = next(r for r in result.rows if r.proxy)
        assert on.proxy_answers > 0


class TestLoadBalance:
    @pytest.fixture(scope="class")
    def result(self):
        return loadbalance.run(pods=4, hosts_per_edge=1, packets=20,
                               protocols=[spec("arppath"),
                                          spec("stp", stp_scale=0.1)])

    def test_everything_delivered(self, result):
        for row in result.rows:
            assert row.delivery_rate == 1.0

    def test_arppath_spreads_load(self, result):
        arp = next(r for r in result.rows if r.protocol == "arppath")
        stp_row = next(r for r in result.rows
                       if r.protocol.startswith("stp"))
        assert arp.report.used_links > stp_row.report.used_links
        assert arp.report.cv < stp_row.report.cv


class TestOccupancy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import occupancy
        return occupancy.run(host_counts=[1, 2], sparse_pairs=4)

    def test_arppath_state_tracks_traffic(self, result):
        sparse = [r for r in result.rows
                  if r.protocol == "arppath (sparse)"]
        assert len(sparse) >= 2
        # Sparse traffic: table size stays flat as hosts double.
        assert sparse[-1].peak_entries_per_bridge \
            <= sparse[0].peak_entries_per_bridge + 2

    def test_spb_state_tracks_network(self, result):
        spb_rows = [r for r in result.rows if r.protocol == "spb"]
        assert spb_rows[-1].peak_entries_per_bridge \
            > spb_rows[0].peak_entries_per_bridge

    def test_table_renders(self, result):
        assert "peak_state/bridge" in result.table()


class TestAblations:
    def test_lock_timeout_sweep_shape(self):
        rows = ablations.sweep_lock_timeout(timeouts=[0.0002, 0.8])
        short, normal = rows
        assert short.relocks > normal.relocks
        assert normal.losses == 0

    def test_repair_buffer_sweep_shape(self):
        rows = ablations.sweep_repair_buffer(sizes=[0, 32])
        without, with_buffer = rows
        assert without.chunks_lost > with_buffer.chunks_lost
        assert with_buffer.buffered > 0

    def test_hello_sweep_shape(self):
        rows = ablations.sweep_hello()
        dynamic, static, none = rows
        assert dynamic.repaired and static.repaired
        assert not none.repaired


class TestChurn:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import churn
        return churn.run(duration=4.0, protocols=["arppath"],
                         flap_rate=1.0, down_time=0.3, seed=0)

    def test_flaps_were_injected(self, result):
        assert result.rows[0].flaps > 0

    def test_availability_is_a_fraction(self, result):
        avail = result.rows[0].availability
        assert 0.0 <= avail.availability <= 1.0
        assert avail.downtime >= 0.0

    def test_records_keys_are_stable(self, result):
        rows = result.records()
        assert rows, "churn produced no records"
        expected = {"protocol", "topology", "flap_rate", "down_time",
                    "duration", "crashes", "migrations",
                    "scripted_failures", "flaps", "availability",
                    "downtime", "outages", "unrepaired", "mttr",
                    "worst_outage", "chunks_sent", "chunks_received",
                    "delivery_rate", "duplicates", "repair_count",
                    "repair_latency_mean", "repair_latency_worst"}
        assert set(rows[0]) == expected

    def test_table_renders(self, result):
        table = result.table()
        assert "availability" in table and "arppath" in table

    def test_zero_flap_rate_is_fully_available(self):
        from repro.experiments import churn
        result = churn.run(duration=3.0, protocols=["arppath"],
                           flap_rate=0.0, seed=0)
        row = result.rows[0]
        assert row.flaps == 0
        assert row.availability.availability == 1.0
        assert row.availability.downtime == 0.0

    def test_scripted_failures_reproduce_fig3_repair_latency(self):
        """The churn scenario with flap_rate=0 and fig3-style scripted
        cuts measures the same repair latencies as the static fig3
        experiment — the regression anchor tying the two together."""
        from repro.experiments import churn
        churn_result = churn.run(duration=4.0, protocols=["arppath"],
                                 flap_rate=0.0, scripted_failures=1,
                                 seed=0)
        fig3_row = fig3_repair.run_protocol(spec("arppath"), failures=1,
                                            seed=0)
        churn_repairs = churn_result.rows[0].repair_times
        assert len(churn_repairs) == len(fig3_row.bridge_repair_times) == 1
        assert churn_repairs[0] == pytest.approx(
            fig3_row.bridge_repair_times[0], rel=0.05)

    def test_crash_restart_cycle_runs(self):
        from repro.experiments import churn
        result = churn.run(duration=4.0, protocols=["arppath"],
                           flap_rate=0.0, crashes=1, down_time=0.3,
                           seed=0)
        row = result.rows[0]
        assert row.crashes == 1
        assert 0.0 <= row.availability.availability <= 1.0

    def test_migration_cycle_runs(self):
        from repro.experiments import churn
        result = churn.run(duration=4.0, protocols=["arppath"],
                           flap_rate=0.0, migrations=1, seed=0)
        assert result.rows[0].migrations == 1

    def test_all_four_families_on_loop_free_topology(self):
        from repro.experiments import churn
        result = churn.run(topology="line", duration=2.0,
                           protocols=["arppath", "stp", "spb", "learning"],
                           flap_rate=0.0, seed=0)
        assert len(result.rows) == 4
        names = {row.protocol.split("(")[0] for row in result.rows}
        assert names == {"arppath", "stp", "spb", "learning"}
        for row in result.rows:
            assert row.availability.availability == 1.0

    def test_learning_on_loopy_topology_refused(self):
        from repro.experiments import churn
        with pytest.raises(ValueError, match="storms"):
            churn.run(topology="demo", protocols=["learning"])

    def test_multiple_seeds_concatenate_rows(self):
        from repro.experiments import registry
        scenario = registry.get("churn")
        result = scenario.execute(seeds=[0, 1], duration=2.0,
                                  protocols=["arppath"], flap_rate=0.5)
        assert len(result.rows) == 2
