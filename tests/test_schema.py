"""Registry JSON-schema export: spec -> schema -> validated submission.

The serve daemon's API surface is generated from the same ``Param``
specs the CLI parses; these tests pin the round trip for every
registered scenario — a scenario added tomorrow is covered here
automatically.
"""

import copy

import pytest

from repro.experiments import registry
from repro.experiments.registry import Param, SubmissionError
from repro.server import jobs


def all_scenarios():
    registry.load_all()
    return registry.all_scenarios()


class TestParamSchema:
    def test_scalar_types_map_to_json_types(self):
        assert Param("n", int, 3).schema()["type"] == "integer"
        assert Param("x", float, 0.5).schema()["type"] == "number"
        assert Param("s", str, "a").schema()["type"] == "string"

    def test_list_param_becomes_nonempty_array(self):
        schema = Param("sizes", int, [16, 36], nargs="+").schema()
        assert schema["type"] == "array"
        assert schema["items"] == {"type": "integer"}
        assert schema["minItems"] == 1
        assert schema["default"] == [16, 36]

    def test_choices_become_enum(self):
        schema = Param("kind", str, "grid",
                       choices=("grid", "ring")).schema()
        assert schema["enum"] == ["grid", "ring"]

    def test_null_default_widens_type(self):
        schema = Param("stp_scale", float, None).schema()
        assert {"type": "null"} in schema["anyOf"]
        assert schema["default"] is None

    def test_help_becomes_description(self):
        schema = Param("n", int, 1, help="how many").schema()
        assert schema["description"] == "how many"

    def test_default_is_a_copy(self):
        param = Param("sizes", int, [16], nargs="+")
        param.schema()["default"].append(99)
        assert param.default == [16]


class TestParamValidate:
    def test_coerces_int_to_float_for_number_params(self):
        assert Param("x", float, 0.5).validate(2) == 2.0
        assert isinstance(Param("x", float, 0.5).validate(2), float)

    def test_rejects_bool_for_integer(self):
        with pytest.raises(SubmissionError):
            Param("n", int, 1).validate(True)

    def test_rejects_wrong_scalar_type(self):
        with pytest.raises(SubmissionError) as excinfo:
            Param("n", int, 1).validate("five")
        assert "expected integer" in str(excinfo.value)

    def test_rejects_off_enum_value(self):
        param = Param("kind", str, "grid", choices=("grid", "ring"))
        with pytest.raises(SubmissionError):
            param.validate("torus")

    def test_null_only_when_default_is_null(self):
        assert Param("x", float, None).validate(None) is None
        with pytest.raises(SubmissionError):
            Param("x", float, 0.5).validate(None)

    def test_list_param_requires_nonempty_array(self):
        param = Param("sizes", int, [16], nargs="+")
        assert param.validate([9, 16]) == [9, 16]
        with pytest.raises(SubmissionError):
            param.validate(9)
        with pytest.raises(SubmissionError):
            param.validate([])

    def test_error_names_the_field_path(self):
        param = Param("sizes", int, [16], nargs="+")
        with pytest.raises(SubmissionError) as excinfo:
            param.validate([16, "x"], "set.sizes[0]")
        assert excinfo.value.field == "set.sizes[0][1]"


class TestScenarioSchemaRoundTrip:
    """spec -> schema -> validated submission, for every scenario."""

    @pytest.mark.parametrize("scenario", all_scenarios(),
                             ids=lambda s: s.name)
    def test_schema_covers_every_param(self, scenario):
        schema = scenario.schema()
        assert schema["type"] == "object"
        assert schema["additionalProperties"] is False
        assert set(schema["properties"]) == \
            {p.name for p in scenario.params}
        assert schema["required"] == []  # every param has a default

    @pytest.mark.parametrize("scenario", all_scenarios(),
                             ids=lambda s: s.name)
    def test_defaults_round_trip_through_validation(self, scenario):
        # Submitting exactly the schema's advertised defaults must
        # validate and bind to the same values the CLI would run with.
        defaults = {name: prop["default"]
                    for name, prop
                    in scenario.schema()["properties"].items()}
        validated = scenario.validate_submission(
            copy.deepcopy(defaults))
        bound = scenario.bind(validated)
        assert bound == scenario.defaults()

    @pytest.mark.parametrize("scenario", all_scenarios(),
                             ids=lambda s: s.name)
    def test_smoke_params_round_trip(self, scenario):
        validated = scenario.validate_submission(
            copy.deepcopy(scenario.smoke))
        assert scenario.bind(validated)  # must not raise

    @pytest.mark.parametrize("scenario", all_scenarios(),
                             ids=lambda s: s.name)
    def test_choices_enforced_through_submission(self, scenario):
        for param in scenario.params:
            if param.choices is None:
                continue
            bogus = "definitely-not-a-choice"
            value = [bogus] if param.is_list else bogus
            with pytest.raises(SubmissionError):
                scenario.validate_submission({param.name: value})

    def test_unknown_param_names_scenario_and_field(self):
        scenario = registry.get("scale")
        with pytest.raises(SubmissionError) as excinfo:
            scenario.validate_submission({"bogus": 1})
        assert excinfo.value.field == "bogus"
        assert "scale" in excinfo.value.reason


class TestRegistrySchema:
    def test_schema_lists_every_scenario_in_order(self):
        payload = registry.schema()
        assert [s["title"] for s in payload["scenarios"]] == \
            registry.names()

    def test_submission_schema_requires_scenario_only(self):
        schema = registry.submission_schema()
        assert schema["required"] == ["scenario"]
        assert schema["properties"]["scenario"]["enum"] == \
            registry.names()
        assert schema["additionalProperties"] is False


class TestJobSubmissionRoundTrip:
    """The full envelope: every scenario submits through jobs.py."""

    @pytest.mark.parametrize("scenario", all_scenarios(),
                             ids=lambda s: s.name)
    def test_envelope_round_trips_to_cells(self, scenario):
        # One sweep axis per scenario: its first sweepable param, at
        # its default (or first choice); grid must expand and bind.
        axis = next((p for p in scenario.params
                     if p.sweep and p.name != "seeds"), None)
        spec = {"scenario": scenario.name, "seeds": [0, 1]}
        if axis is not None:
            value = (axis.choices[0] if axis.choices is not None
                     else (axis.default[0] if axis.is_list
                           else axis.default))
            if value is not None:
                spec["set"] = {axis.name: [value]}
        validated = jobs.validate_submission(spec)
        assert validated["scenario"] == scenario.name
        cells = jobs.spec_cells(validated)
        assert len(cells) == 2  # one per seed
        for cell in cells:
            assert scenario.bind(cell.params())  # must not raise

    def test_scalar_axis_value_shapes_like_cli_set(self):
        # `--set protocols=arppath` runs each family as a singleton
        # list; the JSON envelope must shape identically.
        spec = jobs.validate_submission(
            {"scenario": "scale", "set": {"protocols": ["arppath"]}})
        cells = jobs.spec_cells(spec)
        assert cells[0].params()["protocols"] == ["arppath"]

    def test_seeds_cannot_be_an_axis(self):
        with pytest.raises(SubmissionError):
            jobs.validate_submission(
                {"scenario": "scale", "set": {"seeds": [[0]]}})

    def test_unknown_envelope_field_rejected(self):
        with pytest.raises(SubmissionError) as excinfo:
            jobs.validate_submission({"scenario": "scale",
                                      "priority": 9})
        assert excinfo.value.field == "priority"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SubmissionError):
            jobs.validate_submission({"scenario": "nonesuch"})

    def test_missing_scenario_rejected(self):
        with pytest.raises(SubmissionError):
            jobs.validate_submission({})

    def test_jobs_and_timeout_validation(self):
        with pytest.raises(SubmissionError):
            jobs.validate_submission({"scenario": "ping", "jobs": 0})
        with pytest.raises(SubmissionError):
            jobs.validate_submission({"scenario": "ping",
                                      "timeout": -1})
        spec = jobs.validate_submission({"scenario": "ping",
                                         "timeout": 30})
        assert spec["timeout"] == 30.0
