"""Tests for the scale subsystem: topologies, scenario, meminfo, bulk
announcements.

The golden regression (seed 0, smallest grid) pins the scale rows
exactly: the scenario's records are a pure function of (kind, size,
protocol, seed), and CI's scale smoke relies on that to byte-compare
``--jobs 1`` against ``--jobs 2``.
"""

import pytest

from repro.experiments import registry
from repro.experiments.occupancy import bridge_state_entries
from repro.experiments.scale import run as run_scale
from repro.experiments.scale import run_case
from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError
from repro.netsim.meminfo import (MemorySampler, peak_rss_bytes,
                                  rss_bytes)
from repro.topology import arppath, learning
from repro.topology.library import (SCALE_TOPOLOGIES, pair,
                                    scale_topology)


class TestScaleTopology:
    def test_grid_hits_target_size(self, sim):
        net, src, dst = scale_topology(sim, arppath(), "grid", 16)
        assert len(net.bridges) == 16
        assert {src, dst} <= set(net.hosts)

    def test_grid_hosts_at_opposite_corners(self, sim):
        net, src, dst = scale_topology(sim, arppath(), "grid", 9)
        assert net.bridge_for_host(src).name == "B0_0"
        assert net.bridge_for_host(dst).name == "B2_2"

    def test_fat_tree_rounds_to_pods(self, sim):
        net, src, dst = scale_topology(sim, arppath(), "fat_tree", 15)
        # pods = round(15 * 2/3) = 10 leaves + 5 spines.
        assert len(net.bridges) == 15
        assert len(net.hosts) == 10
        assert src != dst

    def test_random_is_exact(self, sim):
        net, _, _ = scale_topology(sim, arppath(), "random", 12)
        assert len(net.bridges) == 12

    def test_line_is_loop_free(self, sim):
        net, src, dst = scale_topology(sim, arppath(), "line", 6)
        assert len(net.bridges) == 6
        assert len(net.fabric_links()) == 5

    def test_too_small_rejected(self, sim):
        with pytest.raises(TopologyError):
            scale_topology(sim, arppath(), "grid", 3)

    def test_unknown_kind_rejected(self, sim):
        with pytest.raises(TopologyError):
            scale_topology(sim, arppath(), "torus", 16)

    def test_every_kind_builds(self):
        for kind in SCALE_TOPOLOGIES:
            sim = Simulator(seed=0)
            net, src, dst = scale_topology(sim, arppath(), kind, 9)
            assert len(net.bridges) >= 4
            assert src in net.hosts and dst in net.hosts


class TestScaleGolden:
    """Regression: scale rows at seed 0 on the smallest grid, pinned."""

    def rows(self):
        scenario = registry.get("scale")
        result = scenario.execute(sizes=[9], protocols=["arppath"],
                                  pairs=1, probes=1, seeds=[0])
        return scenario.records(result)

    def test_pinned_row(self):
        (row,) = self.rows()
        assert row["protocol"] == "arppath"
        assert row["kind"] == "grid"
        assert row["size"] == 9
        assert row["bridges"] == 9
        assert row["links"] == 16
        assert row["hosts"] == 4
        assert row["frames_sent"] == 78
        assert row["arp_frames"] == 26
        assert row["control_frames"] == 28
        assert row["payloads_delivered"] == 4
        assert row["peak_state"] == 2
        assert row["probes_sent"] == 2
        assert row["probes_answered"] == 2
        assert row["frames_per_payload"] == pytest.approx(19.5)
        assert row["mean_state"] == pytest.approx(10 / 9)
        assert row["convergence_ms"] == pytest.approx(0.1999, rel=1e-3)
        # Engine-footprint peaks are deterministic (the records
        # contract); process RSS never appears in rows. PR 5's
        # free-running transmitters dropped peak_pending_events from 75
        # and events_processed from 569 while every frame-level and
        # timing metric above stayed byte-identical.
        assert row["peak_pending_events"] == 47
        assert row["peak_wheel_timers"] == 14
        assert row["events_processed"] == 323
        assert row["events_per_payload"] == pytest.approx(80.75)
        assert "peak_rss" not in "".join(row)

    def test_rows_are_reproducible(self):
        assert self.rows() == self.rows()


class TestScaleScenario:
    def test_state_grows_for_spb_not_arppath(self):
        result = run_scale(kind="grid", sizes=[9, 16],
                           protocols=["arppath", "spb"], pairs=1,
                           probes=1, seed=0)
        by_protocol = {}
        for row in result.rows:
            by_protocol.setdefault(row.protocol, []).append(row)
        arp_small, arp_large = by_protocol["arppath"]
        spb_small, spb_large = by_protocol["spb"]
        # Link-state replicates the topology everywhere: state grows
        # with the network. ARP-Path state follows conversations only.
        assert spb_large.peak_state > spb_small.peak_state
        assert arp_large.peak_state <= spb_small.peak_state
        assert arp_large.peak_state == arp_small.peak_state

    def test_learning_gated_to_loop_free(self):
        with pytest.raises(ValueError, match="storms"):
            run_scale(kind="grid", sizes=[9], protocols=["learning"])

    def test_learning_runs_on_line(self):
        result = run_scale(kind="line", sizes=[4],
                           protocols=["learning"], pairs=1, probes=1,
                           seed=0)
        (row,) = result.rows
        assert row.probes_answered >= 1
        assert row.peak_state >= 1

    def test_run_case_deterministic(self):
        from repro.experiments.common import spec
        one = run_case(spec("arppath"), "random", 8, pairs=1, probes=1,
                       seed=3)
        two = run_case(spec("arppath"), "random", 8, pairs=1, probes=1,
                       seed=3)
        assert one == two


class TestPopulationScale:
    """endpoints_per_port > 1: flyweight populations in the size sweep."""

    def test_population_cell_deterministic(self):
        from repro.experiments.common import spec
        one = run_case(spec("arppath"), "grid", 9, pairs=2, probes=2,
                       seed=1, endpoints_per_port=10)
        two = run_case(spec("arppath"), "grid", 9, pairs=2, probes=2,
                       seed=1, endpoints_per_port=10)
        assert one == two
        assert one.hosts == 4
        assert one.endpoints == 40
        assert one.payloads_delivered > 0

    def test_population_cell_shard_parity(self):
        from repro.experiments.common import spec
        from repro.experiments.scale import run_case_sharded
        single = run_case(spec("arppath"), "grid", 9, pairs=2, probes=2,
                          seed=1, endpoints_per_port=10)
        sharded = run_case_sharded(spec("arppath"), "grid", 9, pairs=2,
                                   probes=2, seed=1, shards=3,
                                   endpoints_per_port=10)
        assert single == sharded

    def test_default_keeps_endpoints_equal_hosts(self):
        from repro.experiments.common import spec
        row = run_case(spec("arppath"), "grid", 9, pairs=1, probes=1,
                       seed=0)
        assert row.endpoints == row.hosts


class TestBridgeStateEntries:
    def test_learning_switch_counts_fdb(self):
        sim = Simulator(seed=0)
        net = pair(sim, learning())
        net.run(1.0)
        net.host("H0").ping(net.host("H1").ip)
        net.run(1.0)
        assert all(bridge_state_entries(b) >= 2
                   for b in net.bridges.values())


class TestMeminfo:
    def test_rss_positive(self):
        assert rss_bytes() > 0

    def test_peak_at_least_current(self):
        assert peak_rss_bytes() >= rss_bytes()

    def test_sampler_tracks_engine_peaks(self):
        sim = Simulator(seed=0)
        sampler = MemorySampler(sim, interval=0.1)
        sampler.start()
        events = [sim.schedule(0.35, lambda: None) for _ in range(50)]
        sim.run_for(1.0)
        sampler.stop()
        assert sampler.samples > 2
        # The 50 events were pending at the first samples.
        assert sampler.peak_pending_events >= 50
        assert sampler.peak_pending_events >= sim.pending_events
        assert events[0].cancelled is False

    def test_sampler_stop_cancels_timer(self):
        sim = Simulator(seed=0)
        sampler = MemorySampler(sim, interval=0.1)
        sampler.start()
        sim.run_for(0.25)
        sampler.stop()
        assert sim.pending_events == 0
        sim.audit_pending_events()

    def test_sampler_rss_tracking_is_opt_in(self):
        sim = Simulator(seed=0)
        sampler = MemorySampler(sim, interval=0.1)
        sampler.start()
        sim.run_for(0.3)
        sampler.stop()
        assert sampler.peak_rss == 0  # off by default: records safety
        tracked = MemorySampler(sim, interval=0.1, track_rss=True)
        tracked.start()
        tracked.stop()
        assert tracked.peak_rss > 0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            MemorySampler(Simulator(seed=0), interval=0.0)


class TestAnnounceHosts:
    def test_all_hosts_announce_in_one_batch(self, sim):
        net = pair(sim, arppath())
        net.run(1.0)
        before = sum(h.counters.arp_requests_sent
                     for h in net.hosts.values())
        scheduled = net.announce_hosts()
        assert scheduled == 2
        net.run(0.5)
        after = sum(h.counters.arp_requests_sent
                    for h in net.hosts.values())
        assert after - before == 2

    def test_spacing_staggers_announcements(self, sim):
        net = pair(sim, arppath())
        net.run(1.0)
        start = sim.now
        net.announce_hosts(spacing=0.2, start=0.1)
        net.run(0.15)  # H0 announced, H1 not yet
        assert net.host("H0").counters.arp_requests_sent == 1
        assert net.host("H1").counters.arp_requests_sent == 0
        net.run(0.3)
        assert net.host("H1").counters.arp_requests_sent == 1
        assert sim.now == pytest.approx(start + 0.45)
