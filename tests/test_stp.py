"""Tests for the 802.1D spanning tree baseline."""

import pytest

from repro.frames.mac import MAC, mac_for_bridge
from repro.netsim.engine import Simulator
from repro.stp.bpdu import (BridgeId, ConfigBpdu, PortId, PriorityVector,
                            TcnBpdu)
from repro.stp.bridge import PortRole, PortState, StpBridge, StpTimers
from repro.topology import netfpga_demo, pair, ring, stp, stp_scaled
from repro.topology.builder import Network

from repro.testing import ping_once

FAST = StpTimers().scaled(0.1)


def fast_stp():
    return stp(timers=FAST)


@pytest.fixture
def stp_ring(sim):
    """4 STP bridges in a ring (timers x0.1), fully converged."""
    net = ring(sim, fast_stp(), 4)
    net.run(6.0)
    return net


class TestIdentifiers:
    def test_bridge_id_priority_dominates(self):
        low_pri = BridgeId(0x1000, mac_for_bridge(9))
        high_pri = BridgeId(0x8000, mac_for_bridge(0))
        assert low_pri < high_pri

    def test_bridge_id_mac_breaks_ties(self):
        a = BridgeId(0x8000, mac_for_bridge(0))
        b = BridgeId(0x8000, mac_for_bridge(1))
        assert a < b

    def test_bridge_id_validation(self):
        with pytest.raises(ValueError):
            BridgeId(-1, mac_for_bridge(0))
        with pytest.raises(ValueError):
            BridgeId(1 << 16, mac_for_bridge(0))

    def test_port_id_ordering(self):
        assert PortId(0x80, 1) < PortId(0x80, 2)
        assert PortId(0x10, 9) < PortId(0x80, 0)

    def test_vector_comparison_order(self):
        root_a = BridgeId(0x8000, mac_for_bridge(0))
        root_b = BridgeId(0x8000, mac_for_bridge(1))
        bridge = BridgeId(0x8000, mac_for_bridge(5))
        port = PortId(0x80, 0)
        better_root = PriorityVector(root_a, 100, bridge, port)
        worse_root = PriorityVector(root_b, 0, bridge, port)
        assert better_root < worse_root

    def test_vector_cost_breaks_root_ties(self):
        root = BridgeId(0x8000, mac_for_bridge(0))
        bridge = BridgeId(0x8000, mac_for_bridge(5))
        port = PortId(0x80, 0)
        cheap = PriorityVector(root, 4, bridge, port)
        dear = PriorityVector(root, 8, bridge, port)
        assert cheap < dear

    def test_through_adds_cost(self):
        root = BridgeId(0x8000, mac_for_bridge(0))
        vector = PriorityVector(root, 4, root, PortId(0x80, 0))
        assert vector.through(4).cost == 8


class TestRootElection:
    def test_lowest_mac_wins(self, stp_ring):
        net = stp_ring
        roots = {net.bridge(n).root_id for n in ("B0", "B1", "B2", "B3")}
        assert len(roots) == 1
        assert roots.pop() == net.bridge("B0").bid

    def test_root_has_no_root_port(self, stp_ring):
        assert stp_ring.bridge("B0").root_port is None
        assert stp_ring.bridge("B0").is_root

    def test_non_root_has_root_port(self, stp_ring):
        for name in ("B1", "B2", "B3"):
            assert stp_ring.bridge(name).root_port is not None

    def test_priority_overrides_mac(self, sim):
        net = Network(sim)
        net.add_bridge("LOW", factory=stp(timers=FAST))
        net.add_bridge("BOSS", factory=stp(timers=FAST, priority=0x1000))
        net.link("LOW", "BOSS")
        net.start()
        net.run(3.0)
        assert net.bridge("LOW").root_id == net.bridge("BOSS").bid

    def test_root_costs_reflect_distance(self, stp_ring):
        net = stp_ring
        assert net.bridge("B0").root_cost == 0
        assert net.bridge("B1").root_cost == 4
        assert net.bridge("B3").root_cost == 4
        assert net.bridge("B2").root_cost == 8


class TestTreeShape:
    def test_exactly_one_blocked_port_on_ring(self, stp_ring):
        blocked = [info for name in ("B0", "B1", "B2", "B3")
                   for info in stp_ring.bridge(name).ports_in(
                       PortRole.ALTERNATE)]
        assert len(blocked) == 1

    def test_blocked_port_does_not_forward(self, stp_ring):
        net = stp_ring
        blocked = [info for name in ("B0", "B1", "B2", "B3")
                   for info in net.bridge(name).ports_in(
                       PortRole.ALTERNATE)]
        assert blocked[0].state is PortState.BLOCKING

    def test_host_ports_are_designated_forwarding(self, stp_ring):
        net = stp_ring
        for host_name in net.hosts:
            bridge = net.bridge_for_host(host_name)
            port = net.host(host_name).port.peer
            assert bridge.port_role(port) is PortRole.DESIGNATED
            assert bridge.port_state(port) is PortState.FORWARDING

    def test_tree_summary_structure(self, stp_ring):
        summary = stp_ring.bridge("B1").tree_summary()
        assert summary["root"] == str(stp_ring.bridge("B0").bid)
        assert set(summary) == {"bridge", "root", "root_cost", "root_port",
                                "roles", "states"}


class TestForwardingBehaviour:
    def test_connectivity_after_convergence(self, stp_ring):
        assert ping_once(stp_ring, "H0", "H2") is not None

    def test_no_storm_on_ring(self, stp_ring):
        sim = stp_ring.sim
        sent_before = sim.tracer.frames_sent
        stp_ring.host("H0").gratuitous_arp()
        stp_ring.run(1.0)
        # Bounded: the broadcast plus ongoing BPDUs, not a storm.
        assert sim.tracer.frames_sent - sent_before < 200

    def test_forwarding_follows_tree_not_latency(self, sim):
        """On the demo topology STP uses the 1-hop high-latency cross."""
        net = netfpga_demo(sim, fast_stp())
        net.run(6.0)
        rtt = ping_once(net, "A", "B")
        assert rtt is not None
        assert rtt > 900e-6  # ~2x500us cross latency dominates

    def test_learning_only_when_allowed(self, sim):
        net = pair(sim, fast_stp())
        net.start()
        # Immediately after start ports are LISTENING: no learning yet.
        h0 = net.host("H0")
        h0.gratuitous_arp()
        net.run(0.01)
        b0 = net.bridge("B0")
        assert len(b0.fdb) == 0


class TestFailover:
    def test_link_failure_reconverges(self, stp_ring):
        net = stp_ring
        sim = net.sim
        assert ping_once(net, "H0", "H2") is not None
        # Cut a tree link on the H0->H2 path and wait out reconvergence
        # (2x forward delay at scaled timers = 3s, plus margin).
        net.link_between("B0", "B1").take_down()
        net.run(5.0)
        assert ping_once(net, "H0", "H2") is not None

    def test_blocked_port_takes_over(self, stp_ring):
        net = stp_ring
        blocked_before = [info for name in ("B0", "B1", "B2", "B3")
                          for info in net.bridge(name).ports_in(
                              PortRole.ALTERNATE)]
        assert len(blocked_before) == 1
        net.link_between("B0", "B1").take_down()
        net.run(5.0)
        blocked_after = [info for name in ("B0", "B1", "B2", "B3")
                         for info in net.bridge(name).ports_in(
                             PortRole.ALTERNATE)]
        assert blocked_after == []  # no redundancy left, nothing blocked

    def test_root_death_triggers_new_election(self, sim):
        net = ring(sim, fast_stp(), 4)
        net.run(6.0)
        # Kill every link of the root (power failure).
        for link in list(net.links.values()):
            if link.port_a.node.name == "B0" or link.port_b.node.name == "B0":
                link.take_down()
        net.run(8.0)
        # Remaining bridges agree on the new root: B1.
        for name in ("B1", "B2", "B3"):
            assert net.bridge(name).root_id == net.bridge("B1").bid

    def test_failure_recovery_takes_forward_delays(self, stp_ring):
        """The outage is roughly 2 x forward_delay — the cost ARP-Path
        avoids, measured here at 0.1-scaled timers."""
        from repro.traffic.ping import PingSeries
        net = stp_ring
        series = PingSeries(net.host("H0"), net.host("H2").ip, count=60,
                            interval=0.1, timeout=0.5)
        series.start()
        fail_at = net.sim.now + 0.5
        net.sim.at(fail_at, net.link_between("B0", "B1").take_down)
        net.run(8.0)
        series.finalize()
        from repro.metrics.convergence import recovery_from_pings
        recovery = recovery_from_pings(series.results, fail_at)
        assert recovery is not None
        # 2 x 1.5s forward delay, within a probe interval or two.
        assert 2.5 <= recovery.outage <= 4.0


class TestTopologyChange:
    def test_tcn_sent_on_failure(self, stp_ring):
        net = stp_ring
        net.link_between("B1", "B2").take_down()
        net.run(3.0)
        tcns = sum(net.bridge(n).stp_counters.tcns_sent
                   for n in ("B0", "B1", "B2", "B3"))
        assert tcns >= 1

    def test_root_sets_tc_and_fast_aging_propagates(self, stp_ring):
        net = stp_ring
        net.link_between("B1", "B2").take_down()
        net.run(2.0)
        # While TC is active, FDB aging is shortened on bridges that saw
        # the TC flag (forward_delay at scaled timers = 1.5s).
        ages = {net.bridge(n).fdb.aging_time for n in ("B0",)}
        assert ages == {FAST.forward_delay}

    def test_aging_restored_after_tc_while(self, stp_ring):
        net = stp_ring
        net.link_between("B1", "B2").take_down()
        net.run(2.0)
        net.run(10.0)  # > max_age + forward_delay at scale
        assert net.bridge("B0").fdb.aging_time \
            == net.bridge("B0").fdb.default_aging_time


class TestTimers:
    def test_scaling(self):
        scaled = StpTimers().scaled(0.5)
        assert scaled.hello_time == 1.0
        assert scaled.max_age == 10.0
        assert scaled.forward_delay == 7.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StpTimers(hello_time=0)
        with pytest.raises(ValueError):
            StpTimers().scaled(0)

    def test_message_age_expiry_reconverges(self, sim):
        """Silent upstream death (no carrier loss) ages out stored info."""
        net = pair(sim, fast_stp())
        net.run(4.0)
        b0, b1 = net.bridge("B0"), net.bridge("B1")
        assert not b1.is_root
        # Kill B0's control plane entirely (hung software, link alive):
        # no BPDU production AND no reaction to B1's claims.
        b0.stop()
        b0.handle_frame = lambda port, frame: None
        net.run(4.0)  # > max_age (2s scaled)
        assert b1.is_root


class TestBpduTypes:
    def test_config_bpdu_vector(self):
        root = BridgeId(0x8000, mac_for_bridge(0))
        bpdu = ConfigBpdu(root=root, cost=4, bridge=root,
                          port=PortId(0x80, 1))
        assert bpdu.vector.cost == 4

    def test_tcn_wire_size(self):
        assert TcnBpdu(BridgeId(0x8000, mac_for_bridge(0))).wire_size == 4

    def test_config_flags_render(self):
        root = BridgeId(0x8000, mac_for_bridge(0))
        bpdu = ConfigBpdu(root=root, cost=0, bridge=root,
                          port=PortId(0x80, 0), topology_change=True,
                          topology_change_ack=True)
        assert "TC" in str(bpdu) and "TCA" in str(bpdu)
