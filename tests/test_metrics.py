"""Tests for statistics, path oracles, recovery detection and tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.convergence import (recoveries_for_failures,
                                       recovery_from_arrivals,
                                       recovery_from_pings)
from repro.metrics.paths import min_latency_path, path_latency, stretch
from repro.metrics.report import format_cell, format_table, ms, us
from repro.metrics.stats import (coefficient_of_variation, mean, percentile,
                                 stdev, summarize, maybe_summarize)
from repro.topology import arppath, netfpga_demo
from repro.traffic.ping import PingResult


class TestStats:
    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == 2.5

    def test_percentile_bounds(self):
        values = [3, 1, 4, 1, 5]
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    def test_percentile_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_stdev_constant_is_zero(self):
        assert stdev([5, 5, 5]) == 0

    def test_stdev_single_value(self):
        assert stdev([5]) == 0

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0
        assert coefficient_of_variation([0, 10]) == 1.0

    def test_cv_zero_mean(self):
        assert coefficient_of_variation([0, 0]) == 0

    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.min == 1.0 and summary.max == 4.0
        assert summary.mean == 2.5
        assert summary.median == 2.5

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
        assert maybe_summarize([]) is None

    def test_summary_scaled(self):
        summary = summarize([1.0, 2.0]).scaled(1000)
        assert summary.mean == 1500.0
        assert summary.count == 2

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_percentile_within_range(self, values):
        for q in (0, 25, 50, 75, 100):
            result = percentile(values, q)
            assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_summary_invariants(self, values):
        summary = summarize(values)
        slack = max(abs(summary.max), 1e-12) * 1e-9  # float rounding
        assert summary.min <= summary.median <= summary.max + slack
        assert summary.min - slack <= summary.mean <= summary.max + slack
        assert summary.p95 <= summary.p99 + slack


class TestPathsOracle:
    def test_oracle_prefers_low_latency(self, sim):
        net = netfpga_demo(sim, arppath())
        oracle = min_latency_path(net, "A", "B")
        # Optimal avoids the 500us cross: A-NF1-NF2-NF3-B or via NF4.
        assert "NF2" in oracle.nodes or "NF4" in oracle.nodes
        assert oracle.latency == pytest.approx(1e-6 + 10e-6 + 10e-6 + 1e-6)

    def test_oracle_bridge_hops(self, sim):
        net = netfpga_demo(sim, arppath())
        assert min_latency_path(net, "A", "B").bridge_hops == 3

    def test_oracle_adapts_to_failures(self, sim):
        net = netfpga_demo(sim, arppath())
        net.link_between("NF1", "NF2").take_down()
        net.link_between("NF4", "NF1").take_down()
        oracle = min_latency_path(net, "A", "B")
        assert oracle.nodes == ("A", "NF1", "NF3", "B")

    def test_path_latency_sums_links(self, sim):
        net = netfpga_demo(sim, arppath())
        total = path_latency(net, ("A", "NF1", "NF3", "B"))
        assert total == pytest.approx(1e-6 + 500e-6 + 1e-6)

    def test_stretch(self):
        assert stretch(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            stretch(1.0, 0.0)


class TestRecovery:
    def test_recovery_from_arrivals(self):
        arrivals = [0.1, 0.2, 0.3, 1.3, 1.4]
        recovery = recovery_from_arrivals(arrivals, fail_time=0.35,
                                          send_interval=0.1)
        assert recovery.resumed_at == 1.3
        assert recovery.outage == pytest.approx(0.95)
        assert recovery.packets_lost == 9

    def test_no_recovery_returns_none(self):
        assert recovery_from_arrivals([0.1, 0.2], fail_time=0.3,
                                      send_interval=0.1) is None

    def test_recovery_clean_stream(self):
        arrivals = [0.1, 0.2, 0.3, 0.4]
        recovery = recovery_from_arrivals(arrivals, fail_time=0.25,
                                          send_interval=0.1)
        assert recovery.packets_lost == 0

    def test_recoveries_for_multiple_failures(self):
        arrivals = [0.1, 0.2, 1.2, 1.3, 2.3, 2.4]
        recoveries = recoveries_for_failures(arrivals, [0.25, 1.35],
                                             send_interval=0.1)
        assert len(recoveries) == 2
        assert recoveries[0].resumed_at == 1.2
        assert recoveries[1].resumed_at == 2.3

    def test_recovery_from_pings(self):
        results = [
            PingResult(seq=0, sent_at=0.0, rtt=0.001),
            PingResult(seq=1, sent_at=0.1, rtt=None),
            PingResult(seq=2, sent_at=0.2, rtt=None),
            PingResult(seq=3, sent_at=0.3, rtt=0.001),
        ]
        recovery = recovery_from_pings(results, fail_time=0.05)
        assert recovery.resumed_at == 0.3
        assert recovery.packets_lost == 2

    def test_recovery_from_pings_none(self):
        results = [PingResult(seq=0, sent_at=0.0, rtt=None)]
        assert recovery_from_pings(results, fail_time=0.0) is None


class TestReport:
    def test_format_cell_float(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(0.0) == "0"
        assert format_cell(1e-9) == "1.000e-09"

    def test_format_cell_none(self):
        assert format_cell(None) == "-"

    def test_format_cell_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_table_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1], ["long-name", 22]])
        lines = table.split("\n")
        assert len({line.index("1") for line in lines[2:3]}) == 1
        assert lines[1].startswith("----")

    def test_table_title(self):
        table = format_table(["x"], [[1]], title="My Title")
        assert table.startswith("My Title\n========")

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_unit_helpers(self):
        assert us(1e-6) == "1.0us"
        assert ms(0.5) == "500.000ms"
