"""Tests for the shared AgingStore (timer-wheel-backed table aging)."""

from dataclasses import dataclass

from repro.netsim.aging import AgingStore
from repro.netsim.engine import Simulator


@dataclass
class Entry:
    value: str
    expires: float


class TestStandalone:
    """Without a simulator: lazy reap plus the explicit sweep."""

    def test_get_live(self):
        store = AgingStore()
        store.put("k", Entry("v", expires=10.0))
        assert store.get("k", now=5.0).value == "v"

    def test_get_reaps_expired(self):
        store = AgingStore()
        store.put("k", Entry("v", expires=10.0))
        assert store.get("k", now=10.0) is None
        assert len(store) == 0

    def test_on_reap_hook_called_once(self):
        reaped = []
        store = AgingStore(on_reap=lambda key, entry: reaped.append(key))
        store.put("k", Entry("v", expires=1.0))
        store.get("k", now=2.0)
        store.get("k", now=3.0)
        assert reaped == ["k"]

    def test_pop_is_not_a_reap(self):
        reaped = []
        store = AgingStore(on_reap=lambda key, entry: reaped.append(key))
        store.put("k", Entry("v", expires=1.0))
        assert store.pop("k").value == "v"
        assert reaped == []

    def test_reap_sweep(self):
        store = AgingStore()
        store.put("a", Entry("x", expires=1.0))
        store.put("b", Entry("y", expires=5.0))
        assert store.reap(now=2.0) == 1
        assert "b" in store and "a" not in store

    def test_pop_matching(self):
        store = AgingStore()
        store.put("a", Entry("x", expires=1.0))
        store.put("b", Entry("y", expires=1.0))
        assert store.pop_matching(lambda k, e: e.value == "x") == 1
        assert len(store) == 1

    def test_live_views(self):
        store = AgingStore()
        store.put("a", Entry("x", expires=1.0))
        store.put("b", Entry("y", expires=5.0))
        assert store.live_count(now=2.0) == 1
        assert [e.value for e in store.live_values(2.0)] == ["y"]
        assert len(store) == 2  # raw view keeps the expired entry


class TestWheelBacked:
    """With a simulator: the timer wheel reclaims memory promptly."""

    def test_expired_entry_reclaimed_without_lookup(self):
        sim = Simulator(seed=0)
        store = AgingStore(sim)
        store.put("k", Entry("v", expires=1.0))
        sim.run(until=2.0)
        assert len(store) == 0  # no get() ever happened

    def test_reap_hook_fires_from_timer(self):
        sim = Simulator(seed=0)
        reaped = []
        store = AgingStore(sim, on_reap=lambda key, entry:
                           reaped.append((key, sim.now)))
        store.put("k", Entry("v", expires=1.5))
        sim.run(until=5.0)
        assert reaped == [("k", 1.5)]

    def test_refresh_extends_via_lazy_rearm(self):
        sim = Simulator(seed=0)
        store = AgingStore(sim)
        entry = Entry("v", expires=1.0)
        store.put("k", entry)
        sim.schedule(0.5, lambda: setattr(entry, "expires", 3.0))
        sim.run(until=2.0)
        assert store.get("k", sim.now) is entry  # old deadline re-armed
        sim.run(until=4.0)
        assert len(store) == 0  # new deadline enforced

    def test_pop_cancels_timer(self):
        sim = Simulator(seed=0)
        store = AgingStore(sim)
        store.put("k", Entry("v", expires=1.0))
        store.pop("k")
        assert sim.pending_events == 0

    def test_replacing_entry_keeps_single_timer(self):
        sim = Simulator(seed=0)
        store = AgingStore(sim)
        for round_ in range(5):
            store.put("k", Entry(str(round_), expires=sim.now + 1.0))
        assert sim.pending_events == 1

    def test_clear_cancels_all_timers(self):
        sim = Simulator(seed=0)
        store = AgingStore(sim)
        for key in range(10):
            store.put(key, Entry("v", expires=1.0))
        store.clear()
        assert sim.pending_events == 0
        sim.run()
        assert len(store) == 0
