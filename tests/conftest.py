"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ArpPathConfig
from repro.frames.ipv4 import IPv4Address
from repro.frames.mac import MAC
from repro.netsim.engine import Simulator
from repro.topology import arppath, learning, netfpga_demo, pair, spb, stp
from repro.topology.builder import Network


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def traced_sim() -> Simulator:
    """A simulator recording per-frame hop traces."""
    return Simulator(seed=42, trace_hops=True)


@pytest.fixture
def demo_net(sim) -> Network:
    """The NetFPGA demo topology under ARP-Path, warmed up."""
    net = netfpga_demo(sim, arppath())
    net.run(5.0)
    return net


@pytest.fixture
def pair_net(sim) -> Network:
    """Two ARP-Path bridges, two hosts, warmed up."""
    net = pair(sim, arppath())
    net.run(5.0)
    return net


def ping_once(net: Network, src: str, dst: str, timeout: float = 2.0):
    """Ping from *src* to *dst*; returns the RTT or None on loss."""
    rtts = []
    source = net.host(src)
    target = net.host(dst)
    source.ping(target.ip, on_reply=lambda seq, rtt: rtts.append(rtt))
    net.run(timeout)
    return rtts[0] if rtts else None


def mac(index: int) -> MAC:
    """Shorthand: a unicast test MAC."""
    return MAC(0x02_00_00_00_10_00 + index)


def ip(index: int) -> IPv4Address:
    """Shorthand: a test IP."""
    return IPv4Address(0x0A000000 + 0x100 + index)


def fast_config(**overrides) -> ArpPathConfig:
    """An ArpPathConfig with quick timers for unit tests."""
    base = dict(lock_timeout=0.1, learnt_timeout=10.0, guard_timeout=0.2,
                hello_interval=0.5, hello_hold=1.75,
                repair_retry_timeout=0.05)
    base.update(overrides)
    return ArpPathConfig(**base)
