"""Shared fixtures for the test suite.

The plain helper functions (``ping_once``, ``fast_config``, ``mac``,
``ip``) live in :mod:`repro.testing` so test modules can import them
without depending on conftest path-resolution order.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.netsim.engine import Simulator
from repro.topology import arppath, netfpga_demo, pair
from repro.topology.builder import Network

# Hypothesis profiles. CI exports HYPOTHESIS_PROFILE=ci: the per-example
# deadline is disabled (shared runners stall unpredictably — a deadline
# there reports flaky timeouts, not bugs). The example database
# (.hypothesis/) is cached between CI runs, so a counterexample found
# once replays on every later run until fixed — which is why the
# profile must NOT set derandomize=True: that forces database=None and
# would silently disable exactly that replay guarantee.
settings.register_profile(
    "ci",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def traced_sim() -> Simulator:
    """A simulator recording per-frame hop traces."""
    return Simulator(seed=42, trace_hops=True)


@pytest.fixture
def demo_net(sim) -> Network:
    """The NetFPGA demo topology under ARP-Path, warmed up."""
    net = netfpga_demo(sim, arppath())
    net.run(5.0)
    return net


@pytest.fixture
def pair_net(sim) -> Network:
    """Two ARP-Path bridges, two hosts, warmed up."""
    net = pair(sim, arppath())
    net.run(5.0)
    return net
