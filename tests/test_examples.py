"""Smoke tests: every example script runs end to end.

Examples are the first thing a new user touches; these tests keep them
working as the API evolves. Each runs in-process (runpy) with stdout
captured and checked for its headline content.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example: {path}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "selected path: A -> NF1" in out
        assert "Locked address tables" in out

    def test_stp_comparison(self, capsys):
        out = run_example("stp_comparison.py", capsys)
        assert "ARP-Path RTT advantage over STP" in out

    def test_video_failover(self, capsys):
        out = run_example("video_failover.py", capsys)
        assert "100.0%" in out  # ARP-Path delivers everything
        assert "repair times" in out

    def test_proxy_scaling(self, capsys):
        out = run_example("proxy_scaling.py", capsys)
        assert "reduced" in out

    def test_datacenter_loadbalance(self, capsys):
        out = run_example("datacenter_loadbalance.py", capsys)
        assert "per-link load — arppath" in out

    def test_full_demo(self, capsys):
        out = run_example("full_demo.py", capsys)
        assert "PART 1" in out and "PART 2" in out
        assert "repair times" in out

    def test_packet_capture(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # the pcap lands in cwd
        out = run_example("packet_capture.py", capsys)
        assert "wrote" in out and "arppath_race.pcap" in out
        assert (tmp_path / "arppath_race.pcap").exists()

    def test_serve_client(self, capsys, monkeypatch):
        # boots an in-process daemon on an ephemeral port, submits a
        # churn grid over HTTP and streams the records back
        monkeypatch.setattr(sys, "argv", ["serve_client.py"])
        with pytest.raises(SystemExit) as excinfo:
            run_example("serve_client.py", capsys)
        assert excinfo.value.code in (None, 0)
        out = capsys.readouterr().out
        assert "scenarios on offer" in out
        assert "job ended completed" in out
        assert "daemon stopped cleanly" in out
