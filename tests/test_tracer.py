"""Tests for frame-level tracing."""

import pytest

from repro.netsim.tracer import (DELIVERED, DROP_QUEUE, SENT, TraceRecord,
                                 Tracer)


def rec(tracer, kind, link="l0", uid=1, ethertype=0x0800, size=64):
    tracer.record(kind, 0.0, link, uid, ethertype, size, "a", "b")


class TestCounters:
    def test_counts_by_kind(self):
        tracer = Tracer()
        rec(tracer, SENT)
        rec(tracer, SENT)
        rec(tracer, DELIVERED)
        assert tracer.frames_sent == 2
        assert tracer.frames_delivered == 1

    def test_counts_by_ethertype(self):
        tracer = Tracer()
        rec(tracer, SENT, ethertype=0x0806)
        rec(tracer, SENT, ethertype=0x0800)
        assert tracer.count(SENT, 0x0806) == 1
        assert tracer.count(SENT) == 2

    def test_dropped_aggregates(self):
        tracer = Tracer()
        rec(tracer, DROP_QUEUE)
        assert tracer.frames_dropped == 1

    def test_reset(self):
        tracer = Tracer()
        rec(tracer, SENT)
        tracer.reset()
        assert tracer.frames_sent == 0
        assert tracer.records == []


class TestRecords:
    def test_records_kept_by_default(self):
        tracer = Tracer()
        rec(tracer, SENT)
        assert len(tracer.records) == 1
        assert isinstance(tracer.records[0], TraceRecord)

    def test_records_disabled(self):
        tracer = Tracer(keep_records=False)
        rec(tracer, SENT)
        assert tracer.records == []
        assert tracer.frames_sent == 1  # counters still work

    def test_deliveries_for(self):
        tracer = Tracer()
        rec(tracer, DELIVERED, uid=7)
        rec(tracer, DELIVERED, uid=8)
        rec(tracer, SENT, uid=7)
        assert len(tracer.deliveries_for(7)) == 1

    def test_link_load_bytes(self):
        tracer = Tracer()
        rec(tracer, SENT, link="x", size=100)
        rec(tracer, SENT, link="x", size=50)
        rec(tracer, SENT, link="y", size=10)
        rec(tracer, DELIVERED, link="x", size=100)  # not counted
        assert tracer.link_load_bytes() == {"x": 150, "y": 10}

    def test_listener_invoked(self):
        tracer = Tracer(keep_records=False)
        seen = []
        tracer.add_listener(seen.append)
        rec(tracer, SENT)
        assert len(seen) == 1
        assert seen[0].kind == SENT
