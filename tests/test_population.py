"""Flyweight host populations: equivalence, determinism, accounting.

The two load-bearing claims this file pins:

* **Protocol equivalence** — a :class:`HostPopulation` endpoint behaves
  exactly like a real :class:`Host` would in its place (same counters
  for the same staggered workload on a 2-bridge line), so population
  experiments measure the protocols, not the flyweight.
* **Generation-time determinism** — the heavy-tailed traffic
  generators (``zipf_pairs``, ``elephant_mice``) are pure functions of
  (universe, count, seed): the same seed yields the identical flow
  list, which is what lets sharded population runs stay byte-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.occupancy import bridge_state_entries
from repro.frames.ethernet import ETHERTYPE_IPV4
from repro.frames.ipv4 import ip_for_host
from repro.frames.mac import mac_for_host
from repro.hosts.population import HostPopulation
from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError
from repro.topology import arppath, learning
from repro.topology.builder import Network
from repro.topology.factories import spb, stp_scaled
from repro.topology.library import HOST_LINK, populate_access_ports, ring
from repro.traffic.matrix import TrafficMatrix, zipf_rank

QUICK = settings(max_examples=25, deadline=None)


def _population_net(n=3, factory=None, seed=7):
    """B0 -- B1 with a population of *n* behind B0 and host Z on B1."""
    sim = Simulator(seed=seed)
    net = Network(sim, bridge_factory=factory or arppath())
    net.add_bridges("B0", "B1")
    net.link("B0", "B1", latency=50e-6)
    net.add_population("P", n)
    net.attach("P", "B0", latency=HOST_LINK)
    net.add_host("Z")
    net.attach("Z", "B1", latency=HOST_LINK)
    return net


def _real_net(n=3, factory=None, seed=7):
    """The same wiring with *n* real hosts A0..A{n-1} instead."""
    sim = Simulator(seed=seed)
    net = Network(sim, bridge_factory=factory or arppath())
    net.add_bridges("B0", "B1")
    net.link("B0", "B1", latency=50e-6)
    for i in range(n):
        net.add_host(f"A{i}")
        net.attach(f"A{i}", "B0", latency=HOST_LINK)
    net.add_host("Z")
    net.attach("Z", "B1", latency=HOST_LINK)
    return net


class TestIdentity:
    def test_addressing_is_arithmetic(self, sim):
        pop = HostPopulation(sim, "P", size=100, base_index=7)
        assert pop.mac_of(0) == mac_for_host(7)
        assert pop.ip_of(0) == ip_for_host(7)
        assert pop.mac_of(99) == mac_for_host(106)
        assert pop.endpoint(42).name == "P#42"

    def test_index_bounds_checked(self, sim):
        pop = HostPopulation(sim, "P", size=10, base_index=0)
        with pytest.raises(IndexError):
            pop.mac_of(10)
        with pytest.raises(IndexError):
            pop.endpoint(-1)

    def test_builder_reserves_address_block(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_population("P", 50)
        late = net.add_host("H")
        assert late.ip == ip_for_host(50)
        assert late.mac == mac_for_host(50)

    def test_duplicate_name_rejected(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_population("P", 5)
        with pytest.raises(TopologyError):
            net.add_population("P", 5)
        with pytest.raises(TopologyError):
            net.add_host("P")

    def test_endpoint_name_resolution(self, sim):
        net = Network(sim, bridge_factory=arppath())
        net.add_host("H0")
        net.add_population("P", 5)
        assert net.endpoint("H0") is net.host("H0")
        assert net.endpoint("P#3").ip == net.population("P").ip_of(3)
        with pytest.raises(TopologyError):
            net.endpoint("P#9000")
        with pytest.raises(TopologyError):
            net.endpoint("nope")
        assert net.endpoint_count() == 6


class TestHostEquivalence:
    """Endpoint counters == real-host counters for the same workload.

    The workload is staggered (100 ms apart) so the shared access port
    never serialises two endpoints' frames differently than separate
    ports would — the remaining differences would be protocol ones,
    and there must be none.
    """

    def _drive(self, net, senders, z_target):
        """Pings to Z, a Z ping back, and an intra-group UDP send."""
        sim = net.sim
        net.run(5.0)
        got = []
        s0, s1, s2 = senders
        s2.bind_udp(7000, lambda src, sport, payload, pkt:
                    got.append(payload))
        sim.schedule(0.0, s0.ping, net.host("Z").ip)
        sim.schedule(0.1, s1.ping, net.host("Z").ip)
        sim.schedule(0.2, s2.ping, net.host("Z").ip)
        sim.schedule(0.3, net.host("Z").ping, s1.ip)
        sim.schedule(0.4, s0.send_udp, s2.ip, 7000, 7000, b"hello")
        net.run(2.0)
        return got

    def test_counters_match_real_hosts(self):
        real = _real_net()
        got_real = self._drive(real, [real.host(f"A{i}") for i in range(3)],
                               "Z")
        flya = _population_net()
        pop = flya.population("P")
        got_fly = self._drive(flya, [pop.endpoint(i) for i in range(3)],
                              "Z")
        assert got_real == got_fly == [b"hello"]
        for i in range(3):
            assert pop.endpoint_counters(i) == \
                real.host(f"A{i}").counters, f"endpoint {i}"
        assert flya.host("Z").counters == real.host("Z").counters

    def test_aggregate_counters_are_the_sum(self):
        net = _population_net()
        pop = net.population("P")
        self._drive(net, [pop.endpoint(i) for i in range(3)], "Z")
        summed = {}
        for i in range(3):
            for key, value in vars(pop.endpoint_counters(i)).items():
                summed[key] = summed.get(key, 0) + value
        assert summed == vars(pop.counters)

    def test_resolution_failure_parity(self):
        real = _real_net()
        flya = _population_net()
        real.run(5.0)
        flya.run(5.0)
        dead = ip_for_host(9000)
        real.host("A0").ping(dead)
        flya.population("P").endpoint(0).ping(dead)
        real.run(6.0)  # 1 + 3 retries at 1 s, then abandon
        flya.run(6.0)
        assert real.host("A0").counters.resolution_failures == 1
        assert flya.population("P").endpoint_counters(0) \
            .resolution_failures == 1
        assert flya.population("P").dropped_pending == 1


class TestIntraPopulation:
    def test_sibling_traffic_never_crosses_the_link(self):
        net = _population_net(n=4)
        pop = net.population("P")
        net.run(5.0)
        ip_before = net.sim.tracer.by_ethertype["sent"].get(
            ETHERTYPE_IPV4, 0)
        rtts = []
        pop.endpoint(0).ping(pop.ip_of(2),
                             on_reply=lambda seq, rtt: rtts.append(rtt))
        net.run(1.0)
        # The ARP request is a broadcast (it does exit the port); the
        # reply and both echo legs short-circuit inside the population,
        # so not one IPv4 frame touches a link.
        assert rtts and rtts[0] < 1e-4
        assert pop.endpoint_counters(2).echo_requests_received == 1
        assert pop.endpoint_counters(0).echo_replies_received == 1
        ip_after = net.sim.tracer.by_ethertype["sent"].get(
            ETHERTYPE_IPV4, 0)
        assert ip_after == ip_before

    def test_udp_between_siblings(self):
        net = _population_net(n=3)
        pop = net.population("P")
        net.run(5.0)
        inbox = []
        pop.endpoint(1).bind_udp(5353, lambda src, sport, payload, pkt:
                                 inbox.append((str(src), payload)))
        pop.endpoint(0).send_udp(pop.ip_of(1), 5353, 5353, b"x")
        net.run(1.0)
        assert inbox == [(str(pop.ip_of(0)), b"x")]

    def test_duplicate_udp_bind_rejected(self, sim):
        pop = HostPopulation(sim, "P", size=4, base_index=0)
        pop.bind_udp(1, 9000, lambda *a: None)
        with pytest.raises(ValueError):
            pop.bind_udp(1, 9000, lambda *a: None)
        pop.bind_udp(2, 9000, lambda *a: None)  # other endpoint is fine
        pop.unbind_udp(1, 9000)
        pop.bind_udp(1, 9000, lambda *a: None)


class TestFlyweightState:
    def test_state_scales_with_activity_not_size(self):
        net = _population_net(n=100_000)
        pop = net.population("P")
        net.run(5.0)
        pop.endpoint(17).ping(net.host("Z").ip)
        pop.endpoint(99_999).ping(net.host("Z").ip)
        net.run(1.0)
        # Two active endpoints out of 1e5: the mutable state must be a
        # handful of map entries, not O(size).
        assert pop.counters.echo_replies_received == 2
        assert pop.state_entries() < 40


class TestHeavyTailDeterminism:
    def _universe_net(self):
        net = Network(Simulator(seed=0), bridge_factory=arppath())
        net.add_host("H0")
        net.add_host("H1")
        net.add_population("P", 37)
        return net

    @QUICK
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           alpha=st.floats(min_value=1.05, max_value=3.0),
           n=st.integers(min_value=1, max_value=10**6))
    def test_zipf_rank_in_range_and_deterministic(self, seed, alpha, n):
        import random
        a = [zipf_rank(random.Random(seed), alpha, n) for _ in range(5)]
        b = [zipf_rank(random.Random(seed), alpha, n) for _ in range(5)]
        assert a == b
        assert all(1 <= rank <= n for rank in a)

    @QUICK
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=30))
    def test_same_seed_same_flows(self, seed, count):
        import random
        lists = []
        for _ in range(2):
            matrix = TrafficMatrix(self._universe_net())
            matrix.elephant_mice(count=count, rng=random.Random(seed))
            lists.append([(f.src, f.dst, f.packets, f.size, f.port)
                          for f in matrix.flows])
        assert lists[0] == lists[1]
        assert len(lists[0]) == count

    @QUICK
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_zipf_pairs_hit_population_endpoints(self, seed):
        import random
        matrix = TrafficMatrix(self._universe_net())
        flows = matrix.zipf_pairs(count=20, rng=random.Random(seed))
        names = {f.src for f in flows} | {f.dst for f in flows}
        for name in names:
            assert name in ("H0", "H1") or name.startswith("P#")
        for flow in flows:
            assert flow.src != flow.dst


class TestStateAccounting:
    """Satellite: ``bridge_state_entries`` counts population-backed
    endpoints identically across the bridge families, and counts *live*
    entries (expiry matters, reaping order does not)."""

    N = 6

    def _converse(self, factory, warmup):
        net = _population_net(n=self.N, factory=factory)
        pop = net.population("P")
        net.run(warmup)
        for i in range(self.N):
            net.sim.schedule(i * 0.05, pop.endpoint(i).ping,
                             net.host("Z").ip)
        net.run(self.N * 0.05 + 0.5)
        return net

    @pytest.mark.parametrize("factory,warmup", [
        (arppath, 5.0), (learning, 1.0), (lambda: stp_scaled(0.1), 5.0),
    ])
    def test_access_bridge_counts_every_talking_endpoint(self, factory,
                                                         warmup):
        net = self._converse(factory(), warmup)
        # N endpoint MACs plus Z: identical across locked-table (ARP-
        # Path) and FDB (learning, STP) families.
        assert bridge_state_entries(net.bridges["B0"]) == self.N + 1

    def test_spb_advertises_population_endpoints(self):
        net = self._converse(spb(), 8.0)
        net.run(12.0)  # next periodic LSP refresh carries the hosts
        assert bridge_state_entries(net.bridges["B1"]) >= self.N

    @pytest.mark.parametrize("factory,warmup", [
        (arppath, 5.0), (learning, 1.0),
    ])
    def test_counts_live_entries_not_unreaped_ones(self, factory, warmup):
        net = self._converse(factory(), warmup)
        bridge = net.bridges["B0"]
        assert bridge_state_entries(bridge) == self.N + 1
        # Idle past every aging horizon (ARP-Path learnt 120 s, FDB
        # 300 s): live state must read zero even where lazy reaping
        # left entries in the store.
        net.run(320.0)
        assert bridge_state_entries(bridge) == 0


class TestPopulatedTopologies:
    def test_populate_access_ports_is_noop_at_one(self, sim):
        net = ring(sim, arppath(), 4, hosts_per_bridge=1)
        links = len(net.links)
        populate_access_ports(net, 1)
        assert not net.populations
        assert len(net.links) == links

    def test_populate_access_ports_colocates(self, sim):
        net = ring(sim, arppath(), 4, hosts_per_bridge=1)
        populate_access_ports(net, 10)
        assert len(net.populations) == len(net.hosts)
        for name, host in net.hosts.items():
            pop = net.population(f"{name}P")
            assert pop.size == 9
            assert pop.port.peer.node is host.port.peer.node
        assert net.endpoint_count() == 4 * 10
