"""Cross-module integration tests: full protocol scenarios end to end.

These are the scenarios that make the paper's claims measurable; the
experiment modules run bigger versions of the same machinery.
"""

import pytest

from repro.core.bridge import ArpPathBridge
from repro.netsim.engine import Simulator
from repro.topology import (arppath, fat_tree, grid, learning, line,
                            netfpga_demo, random_graph, ring, spb, stp,
                            stp_scaled)
from repro.traffic.ping import PingSeries, ping_between
from repro.traffic.video import stream_between

from repro.testing import ping_once


class TestArpPathConnectivity:
    """Any host pair can talk on any topology — the baseline sanity."""

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_line(self, n):
        sim = Simulator(seed=1)
        net = line(sim, arppath(), n)
        net.run(5.0)
        assert ping_once(net, "H0", "H1") is not None

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_ring(self, n):
        sim = Simulator(seed=1)
        net = ring(sim, arppath(), n)
        net.run(5.0)
        assert ping_once(net, "H0", f"H{n // 2}") is not None

    @pytest.mark.parametrize("dims", [(2, 2), (3, 3), (2, 5)])
    def test_grid(self, dims):
        rows, cols = dims
        sim = Simulator(seed=1)
        net = grid(sim, arppath(), rows, cols)
        net.run(5.0)
        hosts = sorted(net.hosts)
        assert ping_once(net, hosts[0], hosts[-1]) is not None

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs_all_pairs(self, seed):
        sim = Simulator(seed=seed)
        net = random_graph(sim, arppath(), 8, seed=seed, hosts=3)
        net.run(5.0)
        hosts = sorted(net.hosts)
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    assert ping_once(net, src, dst) is not None, \
                        f"{src}->{dst} failed on seed {seed}"

    def test_fat_tree(self):
        sim = Simulator(seed=1)
        net = fat_tree(sim, arppath(), pods=4)
        net.run(5.0)
        assert ping_once(net, "H0", "H7") is not None


class TestFig2Shape:
    """The demo's headline: ARP-Path beats STP on path latency."""

    def test_arppath_beats_stp_on_demo_topology(self):
        rtts = {}
        for name, factory, warmup in [
                ("arppath", arppath(), 5.0),
                ("stp", stp_scaled(0.1), 6.0)]:
            sim = Simulator(seed=1)
            net = netfpga_demo(sim, factory)
            net.run(warmup)
            ping_once(net, "A", "B")  # resolve/learn
            rtts[name] = ping_once(net, "A", "B")
        assert rtts["arppath"] is not None and rtts["stp"] is not None
        assert rtts["stp"] / rtts["arppath"] > 5

    def test_arppath_rtt_tracks_oracle(self):
        from repro.metrics.paths import min_latency_path
        sim = Simulator(seed=1)
        net = netfpga_demo(sim, arppath())
        net.run(5.0)
        ping_once(net, "A", "B")
        rtt = ping_once(net, "A", "B")
        oracle = min_latency_path(net, "A", "B")
        # RTT ~ 2x oracle + serialization; never better than physics.
        assert rtt >= 2 * oracle.latency
        assert rtt <= 2 * oracle.latency * 2


class TestFig3Shape:
    """The demo's second result: repair is orders faster than STP."""

    def test_repair_vs_stp_outage(self):
        outages = {}
        for name, factory, warmup in [
                ("arppath", arppath(), 5.0),
                ("stp", stp_scaled(0.1), 6.0)]:
            sim = Simulator(seed=1)
            net = netfpga_demo(sim, factory)
            net.run(warmup)
            source, sink = stream_between(net.host("A"), net.host("B"),
                                          fps=50.0)
            source.start()
            net.run(1.0)
            # Cut whatever path the stream uses (protocol-specific).
            for wire in list(net.fabric_links()):
                loads = net.sim.tracer  # cheap approach: cut by protocol
            if name == "arppath":
                bridge = net.bridge("NF1")
                bridge.path_port_for(sink.host.mac).link.take_down()
            else:
                net.link_between("NF1", "NF3").take_down()  # STP tree path
            fail_at = net.sim.now
            net.run(8.0)
            source.stop()
            from repro.metrics.convergence import recovery_from_arrivals
            recovery = recovery_from_arrivals(sink.arrivals, fail_at, 0.02)
            assert recovery is not None, f"{name} never recovered"
            outages[name] = recovery.outage
        assert outages["arppath"] < 0.05
        assert outages["stp"] > 1.0  # scaled STP: ~3s

    def test_video_loss_free_repair_on_demo(self):
        sim = Simulator(seed=1)
        net = netfpga_demo(sim, arppath())
        net.run(5.0)
        source, sink = stream_between(net.host("A"), net.host("B"),
                                      fps=25.0)
        source.start()
        net.run(1.0)
        net.bridge("NF1").path_port_for(sink.host.mac).link.take_down()
        net.run(2.0)
        source.stop()
        net.run(0.5)
        assert sink.lost_chunks(source.sent) == 0


class TestMixedWorkloads:
    def test_many_hosts_resolve_concurrently(self):
        sim = Simulator(seed=1)
        net = ring(sim, arppath(), 5, hosts_per_bridge=2)
        net.run(5.0)
        hosts = sorted(net.hosts)
        series = []
        for index, src in enumerate(hosts):
            dst = hosts[(index + 3) % len(hosts)]
            s = PingSeries(net.host(src), net.host(dst).ip, count=3,
                           interval=0.05)
            s.start()
            series.append(s)
        net.run(3.0)
        for s in series:
            s.finalize()
            assert s.losses == 0

    def test_video_and_pings_coexist(self):
        sim = Simulator(seed=1)
        net = netfpga_demo(sim, arppath())
        net.run(5.0)
        source, sink = stream_between(net.host("A"), net.host("B"),
                                      fps=25.0)
        source.start()
        series = ping_between(net, "B", "A", count=10, interval=0.1)
        net.run(3.0)
        source.stop()
        series.finalize()
        assert series.losses == 0
        assert sink.received == source.sent

    def test_deterministic_replay(self):
        """Two identical runs produce byte-identical event streams."""

        def run_once():
            sim = Simulator(seed=99)
            net = netfpga_demo(sim, arppath())
            net.run(5.0)
            ping_once(net, "A", "B")
            net.link_between("NF1", "NF2").take_down()
            ping_once(net, "A", "B")
            return (sim.events_processed, sim.tracer.frames_sent,
                    sim.tracer.frames_delivered, round(sim.now, 9))

        assert run_once() == run_once()


class TestProtocolCoexistence:
    def test_arppath_islands_bridged_by_learning_switch(self):
        """ARP-Path bridges interoperate with a dumb switch between
        them (transparency at the Ethernet level)."""
        sim = Simulator(seed=1)
        from repro.topology.builder import Network
        net = Network(sim, bridge_factory=arppath())
        net.add_bridge("AP0")
        net.add_bridge("SW", factory=learning())
        net.add_bridge("AP1")
        net.add_host("H0")
        net.add_host("H1")
        net.link("AP0", "SW")
        net.link("SW", "AP1")
        net.attach("H0", "AP0")
        net.attach("H1", "AP1")
        net.run(5.0)
        assert ping_once(net, "H0", "H1") is not None
