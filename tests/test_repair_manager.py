"""Tests for the repair state machine (bookkeeping only; the protocol
end-to-end behaviour is in test_repair_protocol.py)."""

import pytest

from repro.core.repair import RepairManager
from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.frames.mac import mac_for_host

S, D = mac_for_host(0), mac_for_host(1)


def frame(n=0):
    return EthernetFrame(dst=D, src=S, ethertype=ETHERTYPE_IPV4,
                         payload=bytes([n]))


@pytest.fixture
def mgr():
    return RepairManager(buffer_size=4, retry_budget=2)


class TestLifecycle:
    def test_start_makes_pending(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        assert mgr.is_pending(D)
        assert len(mgr) == 1

    def test_double_start_rejected(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        with pytest.raises(ValueError):
            mgr.start(D, S, seq=2, now=0.0)

    def test_complete_returns_buffered(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        mgr.buffer_frame(D, frame(0))
        mgr.buffer_frame(D, frame(1))
        flushed = mgr.complete(D, now=0.5)
        assert [f.payload for f in flushed] == [b"\x00", b"\x01"]
        assert not mgr.is_pending(D)

    def test_complete_records_duration(self, mgr):
        mgr.start(D, S, seq=1, now=1.0)
        mgr.complete(D, now=1.25)
        assert mgr.repair_times == [pytest.approx(0.25)]

    def test_complete_unknown_is_empty(self, mgr):
        assert mgr.complete(D, now=0.0) == []

    def test_abandon_counts_frames(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        mgr.buffer_frame(D, frame())
        assert mgr.abandon(D) == 1
        assert mgr.counters.abandoned == 1

    def test_abandon_unknown_is_zero(self, mgr):
        assert mgr.abandon(D) == 0

    def test_pending_targets(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        assert mgr.pending_targets == [D]


class TestBuffering:
    def test_buffer_without_pending_fails(self, mgr):
        assert mgr.buffer_frame(D, frame()) is False

    def test_buffer_overflow(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        for index in range(6):
            mgr.buffer_frame(D, frame(index))
        assert mgr.counters.frames_buffered == 4
        assert mgr.counters.buffer_overflow == 2

    def test_zero_buffer(self):
        mgr = RepairManager(buffer_size=0, retry_budget=1)
        mgr.start(D, S, seq=1, now=0.0)
        assert mgr.buffer_frame(D, frame()) is False


class TestRetries:
    def test_retries_consume_budget(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        assert mgr.note_retry(D) is not None
        assert mgr.note_retry(D) is not None
        assert mgr.note_retry(D) is None

    def test_retry_unknown_target(self, mgr):
        assert mgr.note_retry(D) is None

    def test_retry_counter(self, mgr):
        mgr.start(D, S, seq=1, now=0.0)
        mgr.note_retry(D)
        assert mgr.counters.retries == 1


class TestTimerCancellation:
    def test_complete_cancels_timer(self, mgr):
        class FakeEvent:
            cancelled = False

            def cancel(self):
                self.cancelled = True

        state = mgr.start(D, S, seq=1, now=0.0)
        state.retry_event = FakeEvent()
        mgr.complete(D, now=0.1)
        assert state.retry_event is None or True  # cancel_timer clears it

    def test_abandon_cancels_timer(self, mgr):
        class FakeEvent:
            def __init__(self):
                self.cancelled = False

            def cancel(self):
                self.cancelled = True

        state = mgr.start(D, S, seq=1, now=0.0)
        event = FakeEvent()
        state.retry_event = event
        mgr.abandon(D)
        assert event.cancelled
