"""Tests for repro.frames.ipv4."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frames.ipv4 import (DEFAULT_TTL, IPV4_HEADER_LEN, IPv4Address,
                               IPv4Packet, PROTO_ICMP, PROTO_UDP, ip_for_host,
                               payload_size)
from repro.frames.udp import UdpDatagram


class TestAddress:
    def test_from_dotted_quad(self):
        assert IPv4Address("10.0.0.1").value == 0x0A000001

    def test_from_int(self):
        assert str(IPv4Address(0x0A000001)) == "10.0.0.1"

    def test_from_bytes(self):
        assert IPv4Address(b"\x0a\x00\x00\x01").value == 0x0A000001

    def test_copy_constructor(self):
        original = IPv4Address("192.168.1.1")
        assert IPv4Address(original) == original

    def test_rejects_three_octets(self):
        with pytest.raises(ValueError):
            IPv4Address("10.0.1")

    def test_rejects_big_octet(self):
        with pytest.raises(ValueError):
            IPv4Address("10.0.0.256")

    def test_rejects_negative_int(self):
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_rejects_oversize_int(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            IPv4Address("a.b.c.d")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            IPv4Address(1.5)

    def test_multicast_range(self):
        assert IPv4Address("224.0.0.1").is_multicast
        assert IPv4Address("239.255.255.255").is_multicast
        assert not IPv4Address("223.255.255.255").is_multicast

    def test_limited_broadcast(self):
        assert IPv4Address("255.255.255.255").is_broadcast
        assert not IPv4Address("255.255.255.254").is_broadcast

    def test_ordering_and_hash(self):
        a, b = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
        assert a < b
        assert len({a, IPv4Address("10.0.0.1")}) == 1

    def test_bytes_round_trip(self):
        original = IPv4Address("172.16.254.3")
        assert IPv4Address(original.to_bytes()) == original

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_str_round_trip(self, value):
        original = IPv4Address(value)
        assert IPv4Address(str(original)) == original


class TestHostAllocator:
    def test_first_host(self):
        assert str(ip_for_host(0)) == "10.0.0.1"

    def test_sequential(self):
        assert ip_for_host(1).value == ip_for_host(0).value + 1

    def test_custom_network(self):
        assert str(ip_for_host(0, network="192.168.0.0")) == "192.168.0.1"


class TestPacket:
    def test_wire_size_includes_header(self):
        packet = IPv4Packet(src=ip_for_host(0), dst=ip_for_host(1),
                            proto=PROTO_UDP, payload=b"x" * 10)
        assert packet.wire_size == IPV4_HEADER_LEN + 10

    def test_wire_size_uses_payload_object(self):
        dgram = UdpDatagram(sport=1, dport=2, payload=b"abc")
        packet = IPv4Packet(src=ip_for_host(0), dst=ip_for_host(1),
                            proto=PROTO_UDP, payload=dgram)
        assert packet.wire_size == IPV4_HEADER_LEN + dgram.wire_size

    def test_default_ttl(self):
        packet = IPv4Packet(src=ip_for_host(0), dst=ip_for_host(1),
                            proto=PROTO_ICMP, payload=b"")
        assert packet.ttl == DEFAULT_TTL

    def test_decrement(self):
        packet = IPv4Packet(src=ip_for_host(0), dst=ip_for_host(1),
                            proto=PROTO_ICMP, payload=b"", ttl=2)
        assert packet.decremented().ttl == 1

    def test_decrement_exhausted(self):
        packet = IPv4Packet(src=ip_for_host(0), dst=ip_for_host(1),
                            proto=PROTO_ICMP, payload=b"", ttl=0)
        with pytest.raises(ValueError):
            packet.decremented()

    def test_decrement_is_a_copy(self):
        packet = IPv4Packet(src=ip_for_host(0), dst=ip_for_host(1),
                            proto=PROTO_ICMP, payload=b"", ttl=5)
        assert packet.decremented() is not packet
        assert packet.ttl == 5


class TestPayloadSize:
    def test_none_is_zero(self):
        assert payload_size(None) == 0

    def test_bytes_length(self):
        assert payload_size(b"hello") == 5

    def test_bytearray_length(self):
        assert payload_size(bytearray(7)) == 7

    def test_wire_size_attribute_wins(self):
        class Sized:
            wire_size = 99

        assert payload_size(Sized()) == 99

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_size(3.14)
