"""Tests for links: serialization, propagation, queues, carrier."""

from collections import deque

import pytest

from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.frames.mac import mac_for_host
from repro.netsim import tracer as trc
from repro.netsim.engine import Simulator
from repro.netsim.errors import TopologyError
from repro.netsim.link import Link
from repro.netsim.node import Node, Port

H0, H1 = mac_for_host(0), mac_for_host(1)


class Sink(Node):
    """A node that records everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []
        self.carrier_events = []

    def handle_frame(self, port, frame):
        self.received.append((self.sim.now, port, frame))

    def link_state_changed(self, port, up):
        self.carrier_events.append((self.sim.now, port, up))


def make_frame(size_payload=100):
    return EthernetFrame(dst=H1, src=H0, ethertype=ETHERTYPE_IPV4,
                         payload=b"x" * size_payload)


@pytest.fixture
def wire(sim):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.add_port(), b.add_port(), latency=1e-3,
                bandwidth=1e6, queue_capacity=2, name="a-b")
    return a, b, link


class TestWiring:
    def test_self_port_rejected(self, sim):
        node = Sink(sim, "n")
        port = node.add_port()
        with pytest.raises(TopologyError):
            Link(sim, port, port)

    def test_double_attach_rejected(self, sim):
        a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
        pa = a.add_port()
        Link(sim, pa, b.add_port())
        with pytest.raises(TopologyError):
            Link(sim, pa, c.add_port())

    def test_negative_latency_rejected(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(TopologyError):
            Link(sim, a.add_port(), b.add_port(), latency=-1)

    def test_zero_bandwidth_rejected(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        with pytest.raises(TopologyError):
            Link(sim, a.add_port(), b.add_port(), bandwidth=0)

    def test_other_endpoint(self, wire):
        a, b, link = wire
        assert link.other(a.ports[0]) is b.ports[0]
        assert link.other(b.ports[0]) is a.ports[0]

    def test_other_rejects_foreign_port(self, sim, wire):
        _a, _b, link = wire
        stranger = Sink(sim, "s").add_port()
        with pytest.raises(TopologyError):
            link.other(stranger)

    def test_port_peer(self, wire):
        a, b, _link = wire
        assert a.ports[0].peer is b.ports[0]


class TestTiming:
    def test_delivery_time_is_serialization_plus_latency(self, sim, wire):
        a, b, link = wire
        frame = make_frame(100)  # 118B on wire -> 944 bits at 1e6 b/s
        a.ports[0].send(frame)
        sim.run()
        expected = frame.wire_size * 8 / 1e6 + 1e-3
        assert b.received[0][0] == pytest.approx(expected)

    def test_infinite_bandwidth_skips_serialization(self, sim):
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a.add_port(), b.add_port(), latency=2e-3, bandwidth=None)
        a.ports[0].send(make_frame())
        sim.run()
        assert b.received[0][0] == pytest.approx(2e-3)

    def test_back_to_back_frames_queue_behind_transmitter(self, sim, wire):
        a, b, link = wire
        frame = make_frame(100)
        ser = link.serialization_delay(frame)
        a.ports[0].send(frame)
        a.ports[0].send(frame.clone())
        sim.run()
        times = [t for t, _p, _f in b.received]
        assert times[1] - times[0] == pytest.approx(ser)

    def test_directions_are_independent(self, sim, wire):
        a, b, _link = wire
        a.ports[0].send(make_frame())
        b.ports[0].send(make_frame())
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1

    def test_send_is_copy_on_write(self, sim, wire):
        """Fan-out shares the frame object: without hop tracing no copy
        is ever taken — the delivered frame IS the sent frame, marked
        shared."""
        a, b, _link = wire
        frame = make_frame()
        a.ports[0].send(frame)
        sim.run()
        delivered = b.received[0][2]
        assert delivered is frame
        assert delivered._shared
        assert delivered.uid == frame.uid

    def test_hop_tracing_clones_lazily(self):
        """Under trace_hops each delivery takes a private copy before
        recording its hop, so per-copy traces stay independent."""
        sim = Simulator(seed=0, trace_hops=True)
        hub = Sink(sim, "hub")
        spokes = [Sink(sim, f"s{i}") for i in range(2)]
        for spoke in spokes:
            Link(sim, hub.add_port(), spoke.add_port(), latency=1e-6)
        frame = make_frame()
        hub.flood(frame)
        sim.run()
        got = [spoke.received[0][2] for spoke in spokes]
        assert got[0] is not frame and got[1] is not frame
        assert got[0] is not got[1]
        assert got[0].path_nodes() == ["s0"]
        assert got[1].path_nodes() == ["s1"]
        assert frame.trace == []  # the shared original is never mutated


class TestQueueing:
    def test_queue_overflow_drops(self, sim, wire):
        a, b, link = wire
        # 1 transmitting + 2 queued = 3 delivered; the rest tail-drop.
        for _ in range(6):
            a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 3
        assert sim.tracer.count(trc.DROP_QUEUE) == 3

    def test_queue_drops_counted_per_direction(self, sim):
        """Overflowing a 1-frame queue tail-drops and counts the loss."""
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(sim, a.add_port(), b.add_port(), latency=1e-3,
                    bandwidth=1e6, queue_capacity=1, name="tiny")
        # 1 transmitting + 1 queued; the other three tail-drop.
        for _ in range(5):
            a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 2
        assert link.queue_drops == {"a.p0": 3, "b.p0": 0}
        assert sim.tracer.count(trc.DROP_QUEUE) == 3

    def test_stats_reports_queue_state(self, sim, wire):
        a, _b, link = wire
        for _ in range(3):
            a.ports[0].send(make_frame())
        stats = link.stats()
        assert stats["a.p0"]["busy"] is True
        assert stats["a.p0"]["queued"] == 2
        assert stats["a.p0"]["queue_drops"] == 0
        sim.run()
        stats = link.stats()
        assert stats["a.p0"]["busy"] is False
        assert stats["a.p0"]["queued"] == 0

    def test_queue_drains_in_order(self, sim, wire):
        a, b, _link = wire
        frames = [make_frame() for _ in range(3)]
        for frame in frames:
            a.ports[0].send(frame)
        sim.run()
        received_uids = [f.uid for _t, _p, f in b.received]
        assert received_uids == [f.uid for f in frames]


class TestCarrier:
    def test_down_drops_in_flight(self, sim, wire):
        a, b, link = wire
        a.ports[0].send(make_frame())
        sim.schedule(1e-4, link.take_down)  # before delivery at ~1.9ms
        sim.run()
        assert b.received == []
        assert sim.tracer.count(trc.DROP_LINK_DOWN) >= 1

    def test_down_drops_queued(self, sim, wire):
        a, b, link = wire
        for _ in range(3):
            a.ports[0].send(make_frame())
        link.take_down()
        sim.run()
        assert b.received == []

    def test_send_while_down_is_dropped(self, sim, wire):
        a, b, link = wire
        link.take_down()
        sim.run()
        a.ports[0].send(make_frame())
        sim.run()
        assert b.received == []

    def test_both_ends_notified(self, sim, wire):
        a, b, link = wire
        link.take_down()
        sim.run()
        assert a.carrier_events[-1][2] is False
        assert b.carrier_events[-1][2] is False

    def test_bring_up_notifies(self, sim, wire):
        a, b, link = wire
        link.take_down()
        sim.run()
        link.bring_up()
        sim.run()
        assert a.carrier_events[-1][2] is True

    def test_take_down_is_idempotent(self, sim, wire):
        a, _b, link = wire
        link.take_down()
        link.take_down()
        sim.run()
        downs = [e for e in a.carrier_events if e[2] is False]
        assert len(downs) == 1

    def test_traffic_resumes_after_up(self, sim, wire):
        a, b, link = wire
        link.take_down()
        sim.run()
        link.bring_up()
        sim.run()
        a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 1

    def test_port_is_up_tracks_carrier(self, sim, wire):
        a, _b, link = wire
        assert a.ports[0].is_up
        link.take_down()
        assert not a.ports[0].is_up


class TestFlapEdgeCases:
    """take_down()/bring_up() under in-flight traffic and repeated
    flaps: every loss is counted, and no stale delivery event fires
    after a flap cycle."""

    def test_in_flight_drop_counted_as_carrier_drop(self, sim, wire):
        a, b, link = wire
        a.ports[0].send(make_frame())
        sim.schedule(1e-4, link.take_down)  # mid-serialization
        sim.run()
        assert b.received == []
        assert link.carrier_drops == {"a.p0": 1, "b.p0": 0}

    def test_queued_drops_counted_as_carrier_drops(self, sim, wire):
        a, _b, link = wire
        for _ in range(3):  # 1 transmitting + 2 queued
            a.ports[0].send(make_frame())
        link.take_down()
        sim.run()
        assert link.carrier_drops == {"a.p0": 3, "b.p0": 0}
        assert link.queue_drops == {"a.p0": 0, "b.p0": 0}

    def test_transmit_while_down_counted(self, sim, wire):
        a, _b, link = wire
        link.take_down()
        sim.run()
        link.transmit(a.ports[0], make_frame())
        assert link.carrier_drops["a.p0"] == 1

    def test_no_stale_delivery_after_flap_cycle(self, sim, wire):
        """A frame in flight when carrier drops must NOT be delivered
        after carrier returns, even if its delivery time has not yet
        passed when the link comes back up."""
        a, b, link = wire
        frame = make_frame()
        a.ports[0].send(frame)  # delivery due at ~1.9ms
        sim.schedule(1e-4, link.take_down)
        sim.schedule(2e-4, link.bring_up)  # up again before delivery time
        sim.run()
        assert b.received == []
        direction = link._dirs[a.ports[0]]
        assert direction.pending == [] and direction.queue == deque()
        assert not link.is_busy(a.ports[0])
        assert direction.drain_event is None

    def test_traffic_after_flap_cycle_delivers_once(self, sim, wire):
        a, b, link = wire
        a.ports[0].send(make_frame())
        sim.schedule(1e-4, link.take_down)
        sim.schedule(2e-4, link.bring_up)
        sim.run()
        a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 1

    def test_repeated_flaps_accumulate_counters(self, sim, wire):
        a, b, link = wire
        for _ in range(3):
            a.ports[0].send(make_frame())
            link.take_down()
            sim.run()
            link.bring_up()
            sim.run()
        assert link.carrier_drops["a.p0"] == 3
        assert b.received == []
        a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 1

    def test_flap_cycle_resets_transmitter(self, sim, wire):
        """busy_until/drain_event state is cleared by take_down so the
        first frame after bring_up starts transmitting immediately."""
        a, b, link = wire
        for _ in range(3):
            a.ports[0].send(make_frame())
        link.take_down()
        link.bring_up()
        stats = link.stats()
        assert stats["a.p0"]["busy"] is False
        assert stats["a.p0"]["queued"] == 0
        a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 1

    def test_stats_include_carrier_drops(self, sim, wire):
        a, _b, link = wire
        a.ports[0].send(make_frame())
        link.take_down()
        sim.run()
        assert link.stats()["a.p0"]["carrier_drops"] == 1


class TestCongestedTransmitter:
    """Semantics of the free-running (busy_until) transmitter under
    load, pinned against the retired per-frame tx_done model: identical
    serialisation spacing, identical tail-drop depth, identical losses
    on a mid-burst carrier cut — at half the event count when
    uncongested."""

    def test_uncongested_send_costs_one_event(self, sim, wire):
        """No tx_done event on the uncongested path: one send = one
        delivery event, nothing else."""
        a, _b, _link = wire
        a.ports[0].send(make_frame())
        sim.run()
        assert sim.events_processed == 1

    def test_congested_burst_adds_only_drain_events(self, sim, wire):
        """A 3-frame burst: 3 deliveries + 2 drains (one per queued
        frame), not 3 tx_done + 3 deliveries."""
        a, b, _link = wire
        for _ in range(3):
            a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 3
        assert sim.events_processed == 5

    def test_back_to_back_serialize_at_exact_wire_spacing(self, sim, wire):
        """Queued frames start exactly when the previous serialisation
        ends: deliveries at ser+lat, 2*ser+lat, 3*ser+lat."""
        a, b, link = wire
        frame = make_frame(100)
        ser = frame.wire_size * 8 / 1e6
        for _ in range(3):
            a.ports[0].send(make_frame(100))
        sim.run()
        times = [t for t, _p, _f in b.received]
        assert times == pytest.approx(
            [ser + 1e-3, 2 * ser + 1e-3, 3 * ser + 1e-3])

    def test_tail_drop_depth_unchanged(self, sim, wire):
        """Capacity 2: 1 serialising + 2 queued survive a 6-frame
        burst; exactly 3 tail-drop (the pre-PR depth)."""
        a, b, link = wire
        for _ in range(6):
            a.ports[0].send(make_frame())
        assert link.queue_drops["a.p0"] == 3
        sim.run()
        assert len(b.received) == 3
        assert link.queue_drops == {"a.p0": 3, "b.p0": 0}

    def test_take_down_mid_burst_drops_same_frames(self, sim, wire):
        """4-frame burst, cut at t=2ms: frame 1 delivered (1.944ms),
        frames 2 and 3 lost to carrier (one serialising, one already
        drained into serialisation), frame 4 tail-dropped at send time
        — the exact pre-PR accounting."""
        a, b, link = wire
        for _ in range(4):
            a.ports[0].send(make_frame(100))
        sim.schedule(2e-3, link.take_down)
        sim.run()
        assert len(b.received) == 1
        assert link.queue_drops["a.p0"] == 1
        assert link.carrier_drops["a.p0"] == 2

    def test_take_down_mid_burst_with_queue_still_populated(self, sim, wire):
        """Cut during the first serialisation: the in-flight frame and
        both queued frames are carrier-dropped, queue and drain reset."""
        a, b, link = wire
        for _ in range(3):
            a.ports[0].send(make_frame(100))
        sim.schedule(5e-4, link.take_down)  # first tx ends at 944us
        sim.run()
        assert b.received == []
        assert link.carrier_drops["a.p0"] == 3
        direction = link._dirs[a.ports[0]]
        assert direction.drain_event is None
        assert len(direction.queue) == 0
        assert not link.is_busy(a.ports[0])

    def test_infinite_bandwidth_never_queues_or_drops(self, sim):
        """bandwidth=None: serialisation is skipped, so the free-running
        transmitter is idle again the instant it starts — a same-instant
        burst beyond the queue capacity all delivers, with no tail-drop
        (the documented PR-5 semantic cleanup)."""
        a, b = Sink(sim, "a"), Sink(sim, "b")
        link = Link(sim, a.add_port(), b.add_port(), latency=2e-3,
                    bandwidth=None, queue_capacity=2)
        for _ in range(6):
            a.ports[0].send(make_frame())
        sim.run()
        assert len(b.received) == 6
        assert all(t == pytest.approx(2e-3) for t, _p, _f in b.received)
        assert link.queue_drops == {"a.p0": 0, "b.p0": 0}

    def test_enabling_record_retention_mid_run_takes_effect(self, sim, wire):
        """tracer.keep_records flipped mid-run re-enables record
        materialisation on the link fast path (count_only tracks it)."""
        a, b, _link = wire
        sim.tracer.keep_records = False
        assert sim.tracer.count_only
        a.ports[0].send(make_frame())
        sim.run()
        assert sim.tracer.records == []
        sim.tracer.keep_records = True
        assert not sim.tracer.count_only
        a.ports[0].send(make_frame())
        sim.run()
        kinds = [rec.kind for rec in sim.tracer.records]
        assert trc.SENT in kinds and trc.DELIVERED in kinds
        assert sim.tracer.frames_delivered == 2  # counters never paused

    def test_transmitter_idles_after_queue_drains(self, sim, wire):
        """Once the burst drains the transmitter free-runs again: a
        later send is uncongested (single event, immediate start)."""
        a, b, link = wire
        for _ in range(3):
            a.ports[0].send(make_frame(100))
        sim.run()
        fired = sim.events_processed
        frame = make_frame(100)
        ser = frame.wire_size * 8 / 1e6
        start = sim.now
        a.ports[0].send(frame)
        sim.run()
        assert sim.events_processed == fired + 1
        assert b.received[-1][0] == pytest.approx(start + ser + 1e-3)


class TestNode:
    def test_free_port_reuses_unattached(self, sim):
        node = Sink(sim, "n")
        port = node.add_port()
        assert node.free_port() is port

    def test_free_port_creates_when_all_attached(self, sim, wire):
        a, _b, _link = wire
        new = a.free_port()
        assert new is not a.ports[0]

    def test_flood_excludes_port(self, sim):
        hub = Sink(sim, "hub")
        spokes = [Sink(sim, f"s{i}") for i in range(3)]
        for spoke in spokes:
            Link(sim, hub.add_port(), spoke.add_port(), latency=1e-6)
        sent = hub.flood(make_frame(), exclude=hub.ports[0])
        sim.run()
        assert sent == 2
        assert len(spokes[0].received) == 0
        assert len(spokes[1].received) == 1

    def test_send_unattached_is_noop(self, sim):
        lonely = Sink(sim, "l")
        lonely.add_port().send(make_frame())
        sim.run()  # nothing scheduled, nothing crashes

    def test_hop_recording_when_enabled(self):
        sim = Simulator(seed=0, trace_hops=True)
        a, b = Sink(sim, "a"), Sink(sim, "b")
        Link(sim, a.add_port(), b.add_port(), latency=1e-6)
        a.ports[0].send(make_frame())
        sim.run()
        assert b.received[0][2].path_nodes() == ["b"]
