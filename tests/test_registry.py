"""Tests for the scenario registry contract."""

import pytest

from repro.experiments import registry


class TestRegistration:
    def test_all_eight_experiments_plus_ping(self):
        names = registry.names()
        for expected in ("fig2", "fig3", "stretch", "loopfree", "proxy",
                         "loadbalance", "ablations", "occupancy", "ping"):
            assert expected in names

    def test_every_scenario_has_uniform_seeds_param(self):
        for scenario in registry.all_scenarios():
            param = scenario.param("seeds")
            assert param.nargs == "+"
            assert isinstance(param.default, list)
            assert all(isinstance(s, int) for s in param.default)

    def test_every_scenario_declares_smoke_params(self):
        for scenario in registry.all_scenarios():
            bound = scenario.bind(scenario.smoke)  # must validate
            assert set(scenario.smoke) <= set(bound)

    def test_duplicate_registration_rejected(self):
        scenario = registry.get("proxy")
        with pytest.raises(ValueError):
            registry.register(scenario)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            registry.get("nonesuch")


class TestParamSpec:
    def test_flag_derivation(self):
        param = registry.Param("cross_latency_us", float, 500.0)
        assert param.flag == "--cross-latency-us"

    def test_parse_coerces_and_validates_choices(self):
        param = registry.Param("protocol", str, "arppath",
                               choices=("arppath", "stp"))
        assert param.parse("stp") == "stp"
        with pytest.raises(ValueError):
            param.parse("trill")

    def test_bind_fills_defaults_and_rejects_unknown(self):
        scenario = registry.get("stretch")
        bound = scenario.bind({"bridges": 6})
        assert bound["bridges"] == 6
        assert bound["hosts"] == 4  # untouched default
        with pytest.raises(KeyError):
            scenario.bind({"bogus": 1})

    def test_bind_copies_list_defaults(self):
        scenario = registry.get("stretch")
        scenario.bind()["seeds"].append(99)
        assert 99 not in scenario.bind()["seeds"]


class TestSeededAdapter:
    def test_multi_seed_concatenates_rows(self):
        class FakeResult:
            def __init__(self, seed):
                self.rows = [{"seed": seed}]

        run = registry.seeded(lambda seed: FakeResult(seed))
        merged = run([3, 4, 5])
        assert [row["seed"] for row in merged.rows] == [3, 4, 5]

    def test_empty_seeds_rejected(self):
        run = registry.seeded(lambda seed: None)
        with pytest.raises(ValueError):
            run([])


class TestResultRowProtocol:
    """Every scenario's result emits machine-readable rows."""

    @pytest.fixture(scope="class")
    def proxy_result(self):
        scenario = registry.get("proxy")
        return scenario, scenario.execute(**scenario.smoke)

    def test_records_are_flat_primitive_dicts(self, proxy_result):
        scenario, result = proxy_result
        rows = scenario.records(result)
        assert rows
        for row in rows:
            for value in row.values():
                assert value is None or isinstance(
                    value, (str, bool, int, float))

    def test_report_contains_table(self, proxy_result):
        scenario, result = proxy_result
        assert "EXP-A1" in scenario.report(result)

    def test_protocol_specs_helper_scales_stp(self):
        full, = registry.protocol_specs(["stp"])
        scaled, = registry.protocol_specs(["stp"], stp_scale=0.1)
        assert full.name == "stp"
        assert scaled.name == "stp(x0.1)"
        assert scaled.warmup < full.warmup
