"""Round-trip tests for the BPDU and SPB control-plane codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.spb  # noqa: F401 — registers the LSP codec
import repro.stp  # noqa: F401 — registers the BPDU codec
from repro.frames.codec import CodecError, decode_frame, encode_frame
from repro.frames.ethernet import (ETHERTYPE_BPDU, ETHERTYPE_LSP,
                                   EthernetFrame, STP_MULTICAST)
from repro.frames.mac import MAC
from repro.spb.codec import decode_spb, encode_spb
from repro.spb.lsp import Adjacency, LinkStatePacket, SpbHello
from repro.stp.bpdu import BridgeId, ConfigBpdu, PortId, TcnBpdu
from repro.stp.codec import decode_bpdu, encode_bpdu

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MAC)
priorities = st.integers(min_value=0, max_value=0xFFFF)
bridge_ids = st.builds(BridgeId, priorities, macs)
port_ids = st.builds(PortId, st.integers(min_value=0, max_value=0xFF),
                     st.integers(min_value=0, max_value=0xFF))
#: 1/256 s resolution, so timer values must be on that grid for
#: exact round trips.
timer_values = st.integers(min_value=0, max_value=0xFFFF).map(
    lambda ticks: ticks / 256.0)


class TestBpduCodec:
    @given(root=bridge_ids, cost=st.integers(min_value=0,
                                             max_value=(1 << 32) - 1),
           bridge=bridge_ids, port=port_ids, message_age=timer_values,
           max_age=timer_values, hello=timer_values,
           forward=timer_values, tc=st.booleans(), tca=st.booleans())
    def test_config_round_trip(self, root, cost, bridge, port, message_age,
                               max_age, hello, forward, tc, tca):
        original = ConfigBpdu(root=root, cost=cost, bridge=bridge,
                              port=port, message_age=message_age,
                              max_age=max_age, hello_time=hello,
                              forward_delay=forward, topology_change=tc,
                              topology_change_ack=tca)
        assert decode_bpdu(encode_bpdu(original)) == original

    def test_tcn_round_trip_type(self):
        decoded = decode_bpdu(encode_bpdu(TcnBpdu(
            bridge=BridgeId(0x8000, MAC(5)))))
        assert isinstance(decoded, TcnBpdu)

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            decode_bpdu(b"\x00")

    def test_bad_protocol_rejected(self):
        raw = bytearray(encode_bpdu(TcnBpdu(bridge=BridgeId(0, MAC(0)))))
        raw[0] = 0xFF
        with pytest.raises(CodecError):
            decode_bpdu(bytes(raw))

    def test_full_frame_round_trip(self):
        bpdu = ConfigBpdu(root=BridgeId(0x8000, MAC(1)), cost=4,
                          bridge=BridgeId(0x8000, MAC(2)),
                          port=PortId(0x80, 3))
        frame = EthernetFrame(dst=STP_MULTICAST, src=MAC(2),
                              ethertype=ETHERTYPE_BPDU, payload=bpdu)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.payload == bpdu


class TestSpbCodec:
    @given(origin=macs, seq=st.integers(min_value=0,
                                        max_value=(1 << 32) - 1))
    def test_hello_round_trip(self, origin, seq):
        original = SpbHello(origin=origin, seq=seq)
        assert decode_spb(encode_spb(original)) == original

    @given(origin=macs, seq=st.integers(min_value=0, max_value=1 << 30),
           neighbors=st.lists(macs, max_size=6, unique=True),
           hosts=st.lists(macs, max_size=6, unique=True))
    def test_lsp_round_trip(self, origin, seq, neighbors, hosts):
        original = LinkStatePacket(
            origin=origin, seq=seq,
            adjacencies=tuple(Adjacency(neighbor=n, cost=1.0)
                              for n in neighbors),
            hosts=tuple(hosts))
        assert decode_spb(encode_spb(original)) == original

    def test_empty_rejected(self):
        with pytest.raises(CodecError):
            decode_spb(b"")

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            decode_spb(b"\x07" + b"\x00" * 20)

    def test_truncated_lsp_rejected(self):
        raw = encode_spb(LinkStatePacket(
            origin=MAC(1), seq=1,
            adjacencies=(Adjacency(MAC(2)),), hosts=(MAC(3),)))
        with pytest.raises(CodecError):
            decode_spb(raw[:-3])

    def test_full_frame_round_trip(self):
        lsp = LinkStatePacket(origin=MAC(9), seq=4,
                              adjacencies=(Adjacency(MAC(1)),),
                              hosts=(MAC(2), MAC(3)))
        frame = EthernetFrame(dst=MAC("01:80:c2:00:00:10"), src=MAC(9),
                              ethertype=ETHERTYPE_LSP, payload=lsp)
        assert decode_frame(encode_frame(frame)).payload == lsp


class TestPcapWithControlPlanes:
    def test_stp_capture_decodes(self, sim):
        """A pcap of an STP run now contains decodable BPDUs."""
        from repro.netsim.pcap import PcapRecorder
        from repro.topology import pair, stp
        from repro.stp.bridge import StpTimers
        net = pair(sim, stp(timers=StpTimers().scaled(0.1)))
        recorder = PcapRecorder([l for l in net.links.values()])
        net.run(2.0)
        recorder.close()
        bpdus = 0
        for _ts, raw in recorder.packets:
            frame = decode_frame(raw)
            if frame.ethertype == ETHERTYPE_BPDU:
                assert isinstance(frame.payload, (ConfigBpdu, TcnBpdu))
                bpdus += 1
        assert bpdus > 0

    def test_spb_capture_decodes(self, sim):
        from repro.netsim.pcap import PcapRecorder
        from repro.topology import pair, spb
        net = pair(sim, spb())
        recorder = PcapRecorder([l for l in net.links.values()])
        net.run(2.0)
        recorder.close()
        control = 0
        for _ts, raw in recorder.packets:
            frame = decode_frame(raw)
            if frame.ethertype == ETHERTYPE_LSP:
                assert isinstance(frame.payload,
                                  (SpbHello, LinkStatePacket))
                control += 1
        assert control > 0
