"""Tests for the forwarding table and the plain learning switch."""

import pytest

from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.frames.mac import BROADCAST, mac_for_host
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.switching.learning import LearningSwitch
from repro.switching.table import ForwardingTable
from repro.topology import learning, ring
from repro.topology.builder import Network

M0, M1 = mac_for_host(0), mac_for_host(1)


class FakePort:
    def __init__(self, index):
        self.index = index


class TestForwardingTable:
    def test_learn_then_lookup(self):
        fdb = ForwardingTable(aging_time=10.0)
        port = FakePort(0)
        fdb.learn(M0, port, now=0.0)
        assert fdb.lookup(M0, now=5.0) is port

    def test_aging(self):
        fdb = ForwardingTable(aging_time=10.0)
        fdb.learn(M0, FakePort(0), now=0.0)
        assert fdb.lookup(M0, now=10.0) is None

    def test_learning_refreshes_age(self):
        fdb = ForwardingTable(aging_time=10.0)
        port = FakePort(0)
        fdb.learn(M0, port, now=0.0)
        fdb.learn(M0, port, now=9.0)
        assert fdb.lookup(M0, now=15.0) is port

    def test_move_counted(self):
        fdb = ForwardingTable()
        fdb.learn(M0, FakePort(0), now=0.0)
        fdb.learn(M0, FakePort(1), now=0.0)
        assert fdb.moves == 1

    def test_flush_port(self):
        fdb = ForwardingTable()
        port_a, port_b = FakePort(0), FakePort(1)
        fdb.learn(M0, port_a, now=0.0)
        fdb.learn(M1, port_b, now=0.0)
        assert fdb.flush_port(port_a) == 1
        assert fdb.lookup(M0, now=0.0) is None
        assert fdb.lookup(M1, now=0.0) is port_b

    def test_expire_sweep(self):
        fdb = ForwardingTable(aging_time=5.0)
        fdb.learn(M0, FakePort(0), now=0.0)
        fdb.learn(M1, FakePort(1), now=3.0)
        assert fdb.expire(now=5.0) == 1
        assert M1 in fdb

    def test_temporary_aging_change(self):
        fdb = ForwardingTable(aging_time=300.0)
        fdb.set_aging(15.0)
        fdb.learn(M0, FakePort(0), now=0.0)
        assert fdb.lookup(M0, now=20.0) is None
        fdb.restore_aging()
        assert fdb.aging_time == 300.0

    def test_macs_on(self):
        fdb = ForwardingTable()
        port = FakePort(0)
        fdb.learn(M0, port, now=0.0)
        fdb.learn(M1, port, now=0.0)
        assert set(fdb.macs_on(port)) == {M0, M1}

    def test_forget(self):
        fdb = ForwardingTable()
        fdb.learn(M0, FakePort(0), now=0.0)
        fdb.forget(M0)
        assert M0 not in fdb


@pytest.fixture
def switch_lan(sim):
    net = Network(sim, bridge_factory=learning())
    net.add_bridge("SW")
    for name in ("H0", "H1", "H2"):
        net.add_host(name)
        net.attach(name, "SW", latency=1e-6)
    net.start()
    return net


class TestLearningSwitch:
    def test_unknown_unicast_flooded(self, switch_lan):
        net = switch_lan
        h0 = net.host("H0")
        frame = EthernetFrame(dst=net.host("H1").mac, src=h0.mac,
                              ethertype=ETHERTYPE_IPV4, payload=b"x")
        h0.port.send(frame)
        net.run(0.1)
        switch = net.bridge("SW")
        assert switch.counters.flooded_frames == 1
        assert switch.counters.flooded_copies == 2  # all but ingress

    def test_known_unicast_forwarded_not_flooded(self, switch_lan):
        net = switch_lan
        h0, h1 = net.host("H0"), net.host("H1")
        # H1 talks first so the switch learns it.
        h1.port.send(EthernetFrame(dst=h0.mac, src=h1.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        switch = net.bridge("SW")
        flooded_before = switch.counters.flooded_frames
        h0.port.send(EthernetFrame(dst=h1.mac, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        assert switch.counters.flooded_frames == flooded_before
        assert switch.counters.forwarded >= 1

    def test_same_port_frame_filtered(self, switch_lan):
        net = switch_lan
        h0 = net.host("H0")
        switch = net.bridge("SW")
        # Teach the switch that both MACs live on H0's port.
        h0.port.send(EthernetFrame(dst=M1, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        h0.port.send(EthernetFrame(dst=h0.mac, src=M1,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        h0.port.send(EthernetFrame(dst=M1, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        assert switch.counters.filtered >= 1

    def test_broadcast_always_flooded(self, switch_lan):
        net = switch_lan
        h0 = net.host("H0")
        h0.port.send(EthernetFrame(dst=BROADCAST, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        assert net.bridge("SW").counters.flooded_frames == 1

    def test_carrier_loss_flushes(self, switch_lan):
        net = switch_lan
        h0 = net.host("H0")
        h0.port.send(EthernetFrame(dst=M1, src=h0.mac,
                                   ethertype=ETHERTYPE_IPV4, payload=b""))
        net.run(0.1)
        switch = net.bridge("SW")
        assert len(switch.fdb) == 1
        net.link_between("H0", "SW").take_down()
        net.run(0.1)
        assert len(switch.fdb) == 0


class TestStormOnLoop:
    def test_learning_switches_melt_down_on_a_ring(self):
        """The didactic failure ARP-Path exists to avoid: broadcast on a
        loop without a control plane storms forever."""
        sim = Simulator(seed=0, keep_trace_records=False)
        net = ring(sim, learning(), 4)
        net.start()
        net.host("H0").gratuitous_arp()
        sim.run(until=0.05, max_events=100_000)
        # One broadcast became an unbounded number of transmissions.
        assert sim.tracer.frames_sent > 5_000
