"""Edge-case tests for the SPB baseline: aging, sync, RPF."""

import pytest

from repro.netsim.engine import Simulator
from repro.spb.bridge import SpbBridge
from repro.topology import grid, line, pair, ring, spb
from repro.topology.builder import Network

from repro.testing import ping_once


class TestLsdbAging:
    def test_dead_bridge_lsp_ages_out(self, sim):
        net = line(sim, spb(lsp_max_age=5.0, lsp_refresh=2.0), 3)
        net.run(8.0)
        b0 = net.bridge("B0")
        assert len(b0.lsdb_summary()) == 3
        # Isolate and silence B2 completely.
        net.link_between("B1", "B2").take_down()
        net.bridge("B2").stop()
        net.run(10.0)  # > lsp_max_age
        assert str(net.bridge("B2").mac) not in b0.lsdb_summary()

    def test_own_lsp_never_ages(self, sim):
        net = pair(sim, spb(lsp_max_age=3.0, lsp_refresh=100.0))
        net.run(10.0)
        b0 = net.bridge("B0")
        assert str(b0.mac) in b0.lsdb_summary()


class TestDatabaseSync:
    def test_new_neighbor_gets_full_database(self, sim):
        """A bridge joining later learns about bridges it never heard
        directly (the _send_database path)."""
        net = Network(sim, bridge_factory=spb())
        net.add_bridges("B0", "B1")
        net.link("B0", "B1")
        net.add_host("H0")
        net.attach("H0", "B0")
        net.start()
        net.run(8.0)
        # Now wire a brand-new bridge to B1.
        late = net.add_bridge("LATE")
        net.link("B1", "LATE")
        late.start()
        net.run(5.0)
        assert len(late.lsdb_summary()) == 3

    def test_late_bridge_can_route(self, sim):
        net = Network(sim, bridge_factory=spb())
        net.add_bridges("B0", "B1")
        net.link("B0", "B1")
        net.add_host("H0")
        net.attach("H0", "B0")
        net.start()
        net.run(8.0)
        late = net.add_bridge("LATE")
        net.link("B1", "LATE")
        late.start()
        net.add_host("H_LATE")
        net.attach("H_LATE", "LATE")
        net.run(5.0)
        assert ping_once(net, "H_LATE", "H0", timeout=4.0) is not None


class TestRpf:
    def test_rpf_drops_counted_on_injected_loop_frame(self, sim):
        """A broadcast arriving from off the source's tree direction is
        dropped and counted."""
        from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from repro.frames.mac import BROADCAST
        net = ring(sim, spb(), 4)
        net.run(8.0)
        h0 = net.host("H0")
        h0.gratuitous_arp()  # advertises H0 at B0
        net.run(2.0)
        # Inject a broadcast with H0's source MAC at B2 from the WRONG
        # side (the port facing B3 when the tree reaches B2 via B1, or
        # vice versa) — whichever port is not the RPF port will drop it.
        b2 = net.bridge("B2")
        fabric_ports = [p for p in b2.attached_ports
                        if b2.is_bridge_port(p)]
        frame = EthernetFrame(dst=BROADCAST, src=h0.mac,
                              ethertype=ETHERTYPE_IPV4, payload=b"loop")
        drops_before = b2.spb_counters.rpf_drops
        for port in fabric_ports:
            b2.handle_frame(port, frame.clone())
        assert b2.spb_counters.rpf_drops == drops_before + 1

    def test_unknown_source_broadcast_dropped(self, sim):
        from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
        from repro.frames.mac import BROADCAST, mac_for_host
        net = pair(sim, spb())
        net.run(8.0)
        b1 = net.bridge("B1")
        ghost = mac_for_host(123)
        fabric_port = next(p for p in b1.attached_ports
                           if b1.is_bridge_port(p))
        b1.handle_frame(fabric_port, EthernetFrame(
            dst=BROADCAST, src=ghost, ethertype=ETHERTYPE_IPV4,
            payload=b"?"))
        assert b1.spb_counters.unknown_source_drops == 1


class TestStopLifecycle:
    def test_stop_halts_control_traffic(self, sim):
        net = pair(sim, spb())
        net.run(4.0)
        b0 = net.bridge("B0")
        b0.stop()
        sent_before = b0.spb_counters.hellos_sent
        net.run(5.0)
        assert b0.spb_counters.hellos_sent == sent_before
