"""Edge-case protocol tests for the ARP-Path bridge.

Covers the corners the main protocol tests don't: TTL exhaustion,
cache-answered repairs, unroutable PathFail fallback, multicast (group)
data, port role churn and proxy interplay with repair.
"""

import pytest

from repro.core.bridge import ArpPathBridge
from repro.core.config import ArpPathConfig
from repro.frames.ethernet import (ETHERTYPE_ARPPATH, ETHERTYPE_IPV4,
                                   EthernetFrame)
from repro.frames.mac import MAC, mac_for_host
from repro.netsim.engine import Simulator
from repro.topology import arppath, line, netfpga_demo, pair
from repro.topology.builder import Network

from repro.testing import fast_config


def primed(net, src="H0", dst="H1"):
    source, sink = net.host(src), net.host(dst)
    got = []
    sink.bind_udp(7000, lambda sip, sp, p, pkt: got.append(p))
    source.send_udp(sink.ip, 7000, 7000, b"prime")
    net.run(1.0)
    assert got == [b"prime"]
    return source, sink, got


class TestTtlExhaustion:
    def test_path_request_dies_at_ttl(self, sim):
        """control_ttl smaller than the path length: the request never
        reaches the target's edge and the repair is abandoned."""
        config = fast_config(control_ttl=2, repair_retries=1,
                             repair_retry_timeout=0.05)
        net = line(sim, arppath(config), 5)
        net.run(3.0)
        source, sink, got = primed(net)
        # Expire the knowledge of H1 at the source edge only.
        b0 = net.bridge("B0")
        b0.table.remove(sink.mac)
        source.send_udp(sink.ip, 7000, 7000, b"too-far")
        net.run(2.0)
        assert b"too-far" not in got
        drops = sum(b.apc.ttl_drops for b in net.bridges.values())
        assert drops > 0
        abandoned = sum(b.repair.counters.abandoned
                        for b in net.bridges.values())
        assert abandoned >= 1

    def test_generous_ttl_reaches(self, sim):
        config = fast_config(control_ttl=16)
        net = line(sim, arppath(config), 5)
        net.run(3.0)
        source, sink, got = primed(net)
        net.bridge("B0").table.remove(sink.mac)
        source.send_udp(sink.ip, 7000, 7000, b"reachable")
        net.run(2.0)
        assert b"reachable" in got


class TestCacheAnsweredRepair:
    def test_mid_fabric_bridge_answers_from_cache(self, sim):
        """With repair_reply_from_cache a bridge that merely *knows* the
        target (entry toward it, not a host port) answers the request."""
        config = fast_config(repair_reply_from_cache=True)
        net = line(sim, arppath(config), 4)
        net.run(3.0)
        source, sink, got = primed(net)
        net.bridge("B0").table.remove(sink.mac)
        source.send_udp(sink.ip, 7000, 7000, b"via-cache")
        net.run(2.0)
        assert b"via-cache" in got
        # B1 answered (its entry for H1 points at B2 — a bridge port).
        answered_by = [name for name, b in net.bridges.items()
                       if b.repair.counters.requests_answered > 0]
        assert "B1" in answered_by

    def test_without_cache_reply_only_edge_answers(self, sim):
        net = line(sim, arppath(fast_config()), 4)
        net.run(3.0)
        source, sink, got = primed(net)
        net.bridge("B0").table.remove(sink.mac)
        source.send_udp(sink.ip, 7000, 7000, b"via-edge")
        net.run(2.0)
        assert b"via-edge" in got
        answered_by = [name for name, b in net.bridges.items()
                       if b.repair.counters.requests_answered > 0]
        assert answered_by == ["B3"]


class TestUnroutablePathFail:
    def test_relayed_pathfail_without_route_starts_local_repair(self, sim):
        """A PathFail arriving where the source entry is gone falls back
        to repairing locally instead of dying silently.

        This cannot happen on the natural data path (the data frame
        itself re-learns the source at every hop), so it is exercised
        by direct injection — the defensive branch for entry-expiry
        races and stale relays.
        """
        from repro.frames import control as ctl_proto
        net = netfpga_demo(sim, arppath(fast_config()))
        net.run(3.0)
        source, sink, got = primed(net, "A", "B")
        nf4 = net.bridge("NF4")  # off the active path: no entry for A
        assert nf4.table.get(source.mac, sim.now) is None
        fail = ctl_proto.make_path_fail(net.bridge("NF3").mac, source.mac,
                                        sink.mac, seq=1)
        frame = EthernetFrame(dst=source.mac, src=net.bridge("NF3").mac,
                              ethertype=ETHERTYPE_ARPPATH, payload=fail)
        nf4.handle_frame(nf4.attached_ports[0], frame)
        net.run(1.0)
        assert nf4.repair.counters.fails_unroutable == 1
        assert nf4.repair.counters.started == 1

    def test_midpath_reroute_bounds_loss_to_in_flight_frames(self, sim):
        """When the repaired path avoids the detecting bridge, its
        passively buffered frames are abandoned — bounded loss — and
        the conversation continues on the new path."""
        net = netfpga_demo(sim, arppath(fast_config()))
        net.run(3.0)
        source, sink, got = primed(net, "A", "B")
        nf1 = net.bridge("NF1")
        mid = nf1.path_port_for(sink.mac).peer.node  # NF2 on the path
        mid.path_port_for(sink.mac).link.take_down()
        source.send_udp(sink.ip, 7000, 7000, b"trigger")  # may be lost
        net.run(1.0)
        source.send_udp(sink.ip, 7000, 7000, b"after-repair")
        net.run(1.0)
        assert b"after-repair" in got
        # The repair completed at the source edge bridge.
        assert nf1.repair.counters.completed == 1
        # The detecting bridge's passive buffer was bounded: at most the
        # one in-flight frame was lost.
        lost = [p for p in (b"trigger",) if p not in got]
        assert len(lost) <= 1


class TestMulticastData:
    def test_group_frames_flood_loop_free(self, demo_net):
        group = MAC("01:00:5e:00:00:42")
        a = demo_net.host("A")
        sent_before = demo_net.sim.tracer.frames_sent
        a.port.send(EthernetFrame(dst=group, src=a.mac,
                                  ethertype=ETHERTYPE_IPV4, payload=b"m"))
        demo_net.run(1.0)
        # Bounded fan-out, no storm.
        assert demo_net.sim.tracer.frames_sent - sent_before < 60

    def test_group_frames_never_create_paths(self, demo_net):
        group = MAC("01:00:5e:00:00:42")
        a = demo_net.host("A")
        a.port.send(EthernetFrame(dst=group, src=a.mac,
                                  ethertype=ETHERTYPE_IPV4, payload=b"m"))
        demo_net.run(1.0)
        # No bridge holds a path entry for A (guards are separate).
        for bridge in demo_net.bridges.values():
            entry = bridge.table.get(a.mac, demo_net.sim.now)
            assert entry is None


class TestPortRoleChurn:
    def test_neighbor_replacement_on_same_port(self, sim):
        """Re-cabling a port to a different bridge updates the hello
        neighbour cache in place."""
        config = fast_config()
        net = Network(sim, bridge_factory=arppath(config))
        net.add_bridges("A", "B", "C")
        net.link("A", "B")
        net.start()
        net.run(2.0)
        bridge_a = net.bridge("A")
        port = bridge_a.attached_ports[0]
        assert bridge_a.neighbors[port.index] == net.bridge("B").mac
        # Pull the cable and plug C into the same port.
        net.links["A-B"].take_down()
        from repro.netsim.link import Link
        Link(sim, net.bridge("C").free_port(), bridge_a.add_port())
        net.run(2.0)
        # Old mapping decayed; A now knows only live neighbours.
        assert not bridge_a.is_bridge_port(port)

    def test_repair_answer_requires_live_port(self, sim):
        """A bridge whose host link just died must not answer requests
        for that host."""
        net = pair(sim, arppath(fast_config()))
        net.run(3.0)
        source, sink, _got = primed(net)
        net.link_between("H1", "B1").take_down()
        net.run(0.1)
        source.send_udp(sink.ip, 7000, 7000, b"gone")
        net.run(1.0)
        b1 = net.bridge("B1")
        assert b1.repair.counters.requests_answered == 0


class TestProxyRepairInterplay:
    def test_proxy_answer_then_repair_builds_path(self, sim):
        """A proxied ARP means no discovery flood; the first data frame
        then triggers Path Repair, which builds the path (the interplay
        the proxy docstring promises)."""
        config = fast_config(proxy_enabled=True, proxy_timeout=600.0)
        net = line(sim, arppath(config), 3)
        net.run(3.0)
        h0, h1 = net.host("H0"), net.host("H1")
        got = []
        h1.bind_udp(7000, lambda sip, sp, p, pkt: got.append(p))
        # Prime proxy caches everywhere with one full exchange.
        h0.send_udp(h1.ip, 7000, 7000, b"prime")
        net.run(1.0)
        # The source edge forgets the path (expiry); the host re-ARPs,
        # the proxy suppresses the flood, and the data frame's miss is
        # healed by Path Repair instead.
        b0 = net.bridge("B0")
        b0.table.remove(h1.mac)
        h0.arp_cache.flush()
        arp_flood_before = sum(b.apc.discovery_frames
                               for name, b in net.bridges.items()
                               if name != "B0")
        h0.send_udp(h1.ip, 7000, 7000, b"proxied")
        net.run(2.0)
        assert b"proxied" in got
        assert b0.apc.proxy_suppressed >= 1
        started = sum(b.repair.counters.started
                      for b in net.bridges.values())
        assert started >= 1  # the data path was repaired, not flooded
        # The re-ARP never reached the inner bridges as a broadcast.
        arp_flood_after = sum(b.apc.discovery_frames
                              for name, b in net.bridges.items()
                              if name != "B0")
        assert arp_flood_after == arp_flood_before


class TestRefreshSemantics:
    def test_same_port_rebroadcast_keeps_learnt_timeout(self, sim):
        """A re-ARP over the established path must not downgrade the
        learnt entry to the short lock timeout."""
        config = fast_config(lock_timeout=0.1, learnt_timeout=5.0)
        net = pair(sim, arppath(config))
        net.run(3.0)
        h0, h1 = net.host("H0"), net.host("H1")
        h0.send_udp(h1.ip, 7000, 7000, b"x")
        net.run(1.0)
        h0.gratuitous_arp()  # same port as the learnt entry
        net.run(0.5)  # longer than lock_timeout
        b0 = net.bridge("B0")
        entry = b0.table.get(h0.mac, sim.now)
        assert entry is not None
        assert entry.is_learnt
