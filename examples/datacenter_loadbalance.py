#!/usr/bin/env python3
"""Load distribution over a leaf/spine fabric (paper §2.2).

56 concurrent flows cross a 4-leaf / 2-spine fabric. Under ARP-Path,
each pair's ARP race resolves against the queues the other flows are
building, so flows spread across both spines; STP funnels everything
through its single tree.

Run:  python examples/datacenter_loadbalance.py
"""

from repro.experiments import loadbalance
from repro.experiments.common import spec
from repro.metrics.report import format_table


def main() -> None:
    result = loadbalance.run(protocols=[
        spec("arppath"), spec("stp", stp_scale=0.1)])
    print(result.table())
    print()
    for row in result.rows:
        rows = [[link, f"{load / 1000:.1f}"]
                for link, load in sorted(row.report.per_link.items())]
        print(format_table(["fabric link", "kBytes carried"], rows,
                           title=f"per-link load — {row.protocol}"))
        print()


if __name__ == "__main__":
    main()
