#!/usr/bin/env python3
"""Capture the ARP-Path discovery race to a Wireshark-readable pcap.

Attaches a recorder to every link of the demo topology, runs one ARP
exchange plus a ping, writes `arppath_race.pcap`, and prints a decoded
summary of the capture — you can literally watch the race copies fan
out and the losers die.

Run:  python examples/packet_capture.py
"""

from repro import Simulator, arppath, netfpga_demo
from repro.frames.codec import decode_frame
from repro.metrics.chart import sparkline
from repro.metrics.report import format_table
from repro.netsim.pcap import PcapRecorder

OUTPUT = "arppath_race.pcap"


def main() -> None:
    sim = Simulator(seed=1)
    net = netfpga_demo(sim, arppath())
    net.run(5.0)

    recorder = PcapRecorder(list(net.links.values()))
    rtts = []
    a, b = net.host("A"), net.host("B")
    a.ping(b.ip, on_reply=lambda seq, rtt: rtts.append(rtt))
    net.run(1.0)
    recorder.close()

    count = recorder.save(OUTPUT)
    print(f"wrote {count} frames to {OUTPUT}\n")

    rows = []
    start = recorder.packets[0][0]
    for timestamp, raw in recorder.packets[:20]:
        frame = decode_frame(raw)
        kind = {0x0806: "ARP", 0x0800: "IPv4",
                0x88B5: "ARP-Path"}.get(frame.ethertype, "other")
        rows.append([f"{(timestamp - start) * 1e6:10.1f}", kind,
                     str(frame.src), str(frame.dst), len(raw)])
    print(format_table(["t_us", "proto", "src", "dst", "bytes"], rows,
                       title="first 20 captured frames (decoded)"))

    sizes = [len(raw) for _t, raw in recorder.packets]
    print(f"\nframe sizes over time: {sparkline(sizes, width=60)}")
    print(f"ping RTT: {rtts[0] * 1e6:.1f}us")


if __name__ == "__main__":
    main()
