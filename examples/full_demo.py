#!/usr/bin/env python3
"""The complete SIGCOMM'11 demo, end to end, in one script.

Part 1 (paper §3.1): the same 4-bridge wiring runs ARP-Path and then
STP; ping trains A<->B show the latency difference and the chosen
paths.

Part 2 (paper §3.2): a video stream runs A->B over ARP-Path bridges
while we pull the cable the stream is using, twice; the arrival
timeline shows two barely-visible hiccups where Path Repair rerouted.

Run:  python examples/full_demo.py
"""

from repro import Simulator, arppath, netfpga_demo, stp_scaled
from repro.metrics.chart import sparkline, timeseries
from repro.metrics.paths import PathObserver
from repro.metrics.report import format_table, us
from repro.traffic.ping import PingSeries
from repro.traffic.video import stream_between


def part1_latency() -> None:
    print("=" * 72)
    print("PART 1 — ARP-Path vs STP latency (paper §3.1)")
    print("=" * 72)
    rows = []
    charts = []
    for label, factory, warmup in [("arppath", arppath(), 5.0),
                                   ("stp (x0.1 timers)", stp_scaled(0.1),
                                    6.0)]:
        sim = Simulator(seed=3, trace_hops=True)
        net = netfpga_demo(sim, factory)
        net.run(warmup)
        observer = PathObserver(net, "B")
        series = PingSeries(net.host("A"), net.host("B").ip, count=15,
                            interval=0.05)
        series.start()
        net.run(2.0)
        series.finalize()
        path = observer.last_bridge_path() or ()
        rtts = series.rtts
        rows.append([label, "->".join(path),
                     us(sum(rtts) / len(rtts)), series.losses])
        charts.append((label, rtts))
    print(format_table(["protocol", "path", "mean RTT", "losses"], rows))
    print()
    for label, rtts in charts:
        print(f"  {label:20s} RTT series: "
              f"{sparkline([r * 1e6 for r in rtts], width=30)} "
              f"({us(min(rtts))}..{us(max(rtts))})")
    print()


def part2_repair() -> None:
    print("=" * 72)
    print("PART 2 — video stream vs cable pulls (paper §3.2)")
    print("=" * 72)
    sim = Simulator(seed=3, trace_hops=True)
    net = netfpga_demo(sim, arppath())
    net.run(5.0)
    observer = PathObserver(net, "B")
    source, sink = stream_between(net.host("A"), net.host("B"), fps=25.0)
    source.start()
    net.run(2.0)

    pulls = []

    def pull_cable():
        bridges = observer.last_bridge_path() or ()
        path = ("A",) + bridges + ("B",)
        for left, right in zip(path, path[1:]):
            if left in net.hosts or right in net.hosts:
                continue
            wire = net.link_between(left, right)
            if wire.up:
                wire.take_down()
                pulls.append((sim.now, wire.name))
                return

    start = sim.now + 1.0
    sim.at(start, pull_cable)
    sim.at(start + 2.0, pull_cable)
    net.run(6.0)
    source.stop()
    net.run(0.5)

    print(f"\nstream: {sink.received}/{source.sent} chunks delivered "
          f"({sink.received / source.sent:.1%}), "
          f"{sink.duplicates} duplicates, {sink.reordered} reordered")
    for when, link in pulls:
        print(f"  cable pulled at t={when:.2f}s: {link}")

    # Inter-arrival timeline: repair hiccups appear as spikes.
    t0 = sink.arrivals[0]
    points = [(t - t0, (b - a) * 1e3) for t, a, b in
              zip(sink.arrivals[1:], sink.arrivals, sink.arrivals[1:])]
    print("\nchunk inter-arrival time (ms) over the run "
          "(spikes = repairs):")
    print(timeseries(points, width=64, height=8))

    repair_times = [t for bridge in net.bridges.values()
                    if hasattr(bridge, "repair")
                    for t in bridge.repair.repair_times]
    if repair_times:
        rendered = ", ".join(f"{t * 1e6:.0f}us" for t in repair_times)
        print(f"\nbridge-measured repair times: {rendered}")


def main() -> None:
    part1_latency()
    part2_repair()


if __name__ == "__main__":
    main()
