#!/usr/bin/env python3
"""Sim as a service: drive the `repro serve` daemon over HTTP.

:class:`ServeClient` is a complete stdlib-only client for the daemon's
JSON API (docs/API.md) — point it at any running daemon. Run as a
script it is self-contained: it boots a daemon in-process on an
ephemeral port with a throwaway database, then

* lists the scenario schemas (`GET /v1/scenarios`),
* submits a churn sweep grid (`POST /v1/jobs`),
* streams result records incrementally with offset-based resumption
  (`GET /v1/jobs/<id>/records?offset=N`),
* queries the durable job history (`GET /v1/jobs`).

Run:  python examples/serve_client.py
Or against an already-running daemon:
      python examples/serve_client.py --url http://127.0.0.1:8642
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


class ServeClient:
    """A minimal client for the `repro serve` HTTP/JSON API."""

    def __init__(self, base_url: str):
        self.base_url = base_url.rstrip("/")

    def _get(self, path: str):
        with urllib.request.urlopen(self.base_url + path) as response:
            return response.status, dict(response.headers), \
                response.read().decode("utf-8")

    def _get_json(self, path: str):
        return json.loads(self._get(path)[2])

    def _post_json(self, path: str, payload):
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read().decode("utf-8"))

    def health(self):
        return self._get_json("/v1/health")

    def scenarios(self):
        return self._get_json("/v1/scenarios")["scenarios"]

    def submit(self, spec):
        """Submit a job spec; returns the queued job dict."""
        return self._post_json("/v1/jobs", spec)["job"]

    def job(self, job_id):
        return self._get_json(f"/v1/jobs/{job_id}")["job"]

    def jobs(self, state=None, limit=20):
        path = f"/v1/jobs?limit={limit}"
        if state:
            path += f"&state={state}"
        return self._get_json(path)["jobs"]

    def cancel(self, job_id):
        return self._post_json(f"/v1/jobs/{job_id}/cancel", {})["job"]

    def summary(self, job_id):
        return self._get_json(f"/v1/jobs/{job_id}/summary")["summary"]

    def stream_records(self, job_id, poll_s=0.05):
        """Yield record dicts as the job produces them.

        Polls the NDJSON endpoint with the offset the previous fetch's
        ``X-Next-Offset`` header handed back, until the job reaches a
        terminal state and every record has been read — the
        resumption loop a client surviving its own restarts would run
        (persist ``offset`` and carry on where it left off).
        """
        offset = 0
        while True:
            status, headers, body = self._get(
                f"/v1/jobs/{job_id}/records?offset={offset}")
            for line in body.splitlines():
                yield json.loads(line)
            offset = int(headers["X-Next-Offset"])
            state = headers["X-Job-State"]
            if state in ("completed", "failed", "cancelled"):
                # one final fetch already happened after the terminal
                # state was visible, so the stream is complete
                if int(headers["X-Next-Offset"]) == offset:
                    return
            time.sleep(poll_s)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="base URL of a running daemon (default: "
                             "boot one in-process)")
    args = parser.parse_args()

    daemon = None
    if args.url:
        base_url = args.url
    else:
        # Self-contained mode: an in-process daemon on an ephemeral
        # port, with a throwaway job store.
        import tempfile
        from repro.server.daemon import Daemon, DaemonConfig
        db = tempfile.NamedTemporaryFile(suffix=".db", delete=False)
        daemon = Daemon(DaemonConfig(host="127.0.0.1", port=0,
                                     db=db.name, workers=2, pool=2))
        daemon.start()
        host, port = daemon.address
        base_url = f"http://{host}:{port}"
        print(f"booted an in-process daemon at {base_url}\n")

    client = ServeClient(base_url)
    print(f"daemon health: {client.health()}\n")

    names = [schema["title"] for schema in client.scenarios()]
    print(f"{len(names)} scenarios on offer: {', '.join(names)}\n")

    spec = {
        "scenario": "churn",
        "seeds": [0, 1],
        "set": {"flap_rate": [0.5], "duration": [3],
                "protocols": ["arppath"]},
        "jobs": 2,
    }
    job = client.submit(spec)
    print(f"submitted job {job['id']}: churn grid, "
          f"{job['cells_total']} cells, state={job['state']}")

    print("streaming records as cells complete:")
    count = 0
    for record in client.stream_records(job["id"]):
        count += 1
        print(f"  [{count}] seed={record['seed']} "
              f"protocol={record['protocol']} "
              f"availability={record['availability']:.4f} "
              f"outages={record['outages']}")
    final = client.job(job["id"])
    print(f"{count} records streamed; job ended {final['state']}\n")

    summary = client.summary(job["id"])
    print(f"summary: {len(summary['summary'])} aggregated rows "
          "(mean/ci95 over seeds)\n")

    history = client.jobs(limit=5)
    print("job history (survives daemon restarts):")
    for entry in history:
        print(f"  #{entry['id']} {entry['spec']['scenario']:8s} "
              f"{entry['state']:10s} cells={entry['cells_done']}"
              f"/{entry['cells_total']} records={entry['record_count']}")

    if daemon is not None:
        import os
        db_path = daemon.config.db
        daemon.stop()
        for leftover in (db_path, db_path + "-wal", db_path + "-shm"):
            if os.path.exists(leftover):
                os.unlink(leftover)
        print("\ndaemon stopped cleanly")


if __name__ == "__main__":
    sys.exit(main())
