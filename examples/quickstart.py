#!/usr/bin/env python3
"""Quickstart: build the paper's demo network and watch ARP-Path work.

Builds the 4-bridge NetFPGA demo topology (ring + slow cross link),
pings host A -> host B, and shows:

* the RTT of the first ping (includes the ARP race) and of a warm ping,
* the path the race selected (avoiding the 500 us cross cable),
* each bridge's locked address table.

Run:  python examples/quickstart.py
"""

from repro import Simulator, arppath, netfpga_demo
from repro.metrics.paths import PathObserver
from repro.metrics.report import format_table, us


def main() -> None:
    sim = Simulator(seed=1, trace_hops=True)
    net = netfpga_demo(sim, arppath())
    print("Topology: NF1-NF2-NF3-NF4 ring (10us links) + NF1-NF3 cross "
          "(500us), host A on NF1, host B on NF3\n")

    net.run(5.0)  # hellos classify ports

    a, b = net.host("A"), net.host("B")
    observer = PathObserver(net, "B")
    rtts = []
    a.ping(b.ip, seq=1, on_reply=lambda seq, rtt: rtts.append(rtt))
    net.run(1.0)
    a.ping(b.ip, seq=2, on_reply=lambda seq, rtt: rtts.append(rtt))
    net.run(1.0)

    print(f"first ping (with ARP race): {us(rtts[0])}")
    print(f"warm ping  (path learnt):   {us(rtts[1])}")
    path = observer.last_bridge_path()
    print(f"selected path: A -> {' -> '.join(path)} -> B")
    print("(the 1-hop NF1->NF3 cross was rejected: 500us beats nothing)\n")

    rows = []
    for name in sorted(net.bridges):
        bridge = net.bridge(name)
        for entry in bridge.table.entries(sim.now):
            who = "host A" if entry.mac == a.mac else "host B"
            rows.append([name, who, entry.port.name, entry.state.value])
    print(format_table(["bridge", "address of", "port", "state"], rows,
                       title="Locked address tables"))


if __name__ == "__main__":
    main()
