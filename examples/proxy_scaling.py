#!/usr/bin/env python3
"""ARP-Proxy broadcast suppression (paper §2.2 "Scalability").

All-pairs ARP traffic on a 3x3 grid fabric, with the in-bridge ARP
proxy off and then on. With the proxy enabled, only the first
resolution of each address floods the fabric; every later request is
answered at the ingress bridge, exactly the EtherProxy idea the paper
cites.

Run:  python examples/proxy_scaling.py
"""

from repro.experiments import broadcast


def main() -> None:
    result = broadcast.run(rows=3, cols=3, rounds=3)
    print(result.table())
    reduction = result.reduction()
    if reduction is not None:
        print(f"\nARP frames on fabric links reduced {reduction:.1f}x "
              "by the proxy,\nwith zero failed resolutions.")


if __name__ == "__main__":
    main()
