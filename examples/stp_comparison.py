#!/usr/bin/env python3
"""The paper's §3.1 demo: ARP-Path vs STP latency, side by side.

Runs the same physical wiring under ARP-Path, 802.1D STP and the
link-state SPB baseline, pings A<->B under each, and prints the latency
table the demo GUI graphed — plus each protocol's chosen path, so you
can see *why* the numbers differ.

Run:  python examples/stp_comparison.py
"""

from repro.experiments import fig2_latency
from repro.experiments.common import spec


def main() -> None:
    result = fig2_latency.run(probes=20, protocols=[
        spec("arppath"),
        spec("stp", stp_scale=0.1),  # scaled timers; path choice identical
        spec("spb"),
    ])
    print(result.table())
    print()
    speedup = result.speedup()
    if speedup is not None:
        print(f"ARP-Path RTT advantage over STP: {speedup:.1f}x")
    print("\nWhy: 802.1D path costs depend on bandwidth only, so STP's "
          "tree happily\nuses the 1-hop, 500us cross cable; the ARP race "
          "actually *measures* each\npath and keeps the 2-hop, 20us one.")


if __name__ == "__main__":
    main()
