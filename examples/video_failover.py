#!/usr/bin/env python3
"""The paper's §3.2 demo: video streaming across successive failures.

Host A streams 25 fps video to host B over the four demo bridges. We
pull the cable the stream is using — twice — and print a timeline of
what Path Repair did about it, plus the equivalent numbers for 802.1D
STP (timers scaled 10x faster; multiply its outages by 10 for IEEE
defaults).

Run:  python examples/video_failover.py
"""

from repro import Simulator, arppath, netfpga_demo, stp_scaled
from repro.core.bridge import ArpPathBridge
from repro.metrics.convergence import recoveries_for_failures
from repro.metrics.paths import PathObserver
from repro.metrics.report import format_table, ms

FPS = 25.0
FAILURES = 2


def run_protocol(label, factory, warmup):
    from repro.traffic.video import stream_between

    sim = Simulator(seed=7, trace_hops=True)
    net = netfpga_demo(sim, factory)
    net.run(warmup)

    observer = PathObserver(net, "B")
    source, sink = stream_between(net.host("A"), net.host("B"), fps=FPS)
    source.start()
    net.run(2.0)

    fail_times, failed_links = [], []

    def cut_active_link():
        fail_times.append(sim.now)
        bridges = observer.last_bridge_path()
        path = ("A",) + (bridges or ()) + ("B",)
        for left, right in zip(path, path[1:]):
            if left in net.hosts or right in net.hosts:
                continue
            wire = net.link_between(left, right)
            if wire.up:
                wire.take_down()
                failed_links.append(wire.name)
                return
        failed_links.append("-")

    spacing = 2.0 if label == "arppath" else 6.0
    start = sim.now + 1.0
    for index in range(FAILURES):
        sim.at(start + index * spacing, cut_active_link)
    net.run(start + FAILURES * spacing + 2.0 - sim.now)
    source.stop()
    net.run(1.0)

    recoveries = recoveries_for_failures(sink.arrivals, fail_times,
                                         send_interval=1.0 / FPS)
    repair_times = [t for bridge in net.bridges.values()
                    if isinstance(bridge, ArpPathBridge)
                    for t in bridge.repair.repair_times]
    return {
        "label": label,
        "failed_links": failed_links,
        "recoveries": recoveries,
        "sent": source.sent,
        "received": sink.received,
        "repair_times": repair_times,
    }


def main() -> None:
    results = [
        run_protocol("arppath", arppath(), warmup=5.0),
        run_protocol("stp(x0.1)", stp_scaled(0.1), warmup=6.0),
    ]
    rows = []
    for result in results:
        for index, (link, recovery) in enumerate(
                zip(result["failed_links"], result["recoveries"]), 1):
            rows.append([
                result["label"], index, link,
                ms(recovery.outage) if recovery else "never",
                recovery.packets_lost if recovery else "-",
            ])
    print(format_table(
        ["protocol", "failure#", "link cut", "stream outage",
         "frames lost"], rows,
        title="Video stream vs successive link failures (paper Fig. 3)"))
    print()
    for result in results:
        delivered = result["received"] / result["sent"]
        print(f"{result['label']}: {result['received']}/{result['sent']} "
              f"chunks delivered ({delivered:.1%})")
        if result["repair_times"]:
            times = ", ".join(f"{t * 1e6:.0f}us"
                              for t in result["repair_times"])
            print(f"  bridge-measured repair times: {times}")
    print("\n(STP numbers are at 10x-scaled timers; multiply outages by "
          "10 for IEEE defaults.)")


if __name__ == "__main__":
    main()
