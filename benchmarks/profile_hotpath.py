"""Profile the dataplane hot path so perf PRs are data-driven.

Runs the n=100 flood workload from :mod:`bench_scale` (grid warm-up +
bulk gratuitous-ARP race) under :mod:`cProfile` and prints the top
cumulative-time lines — the exact workload the scale bench guards, so
a line that climbs this table is a line that will move
``BENCH_scale.json``.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py            # table
    PYTHONPATH=src python benchmarks/profile_hotpath.py --json out.json
    PYTHONPATH=src python benchmarks/profile_hotpath.py --shards 4

``--shards N`` profiles the same workload under the sharded runtime
(:mod:`repro.netsim.shard`, thread mode, one merged profile across the
worker threads), so protocol costs — lockstep rounds, frame codec
round-trips, staged-frame release — land in the same table as the
dataplane they tax.

``--json`` writes the same top-N rows as a JSON artifact (CI uploads it
from the bench-guard job) with per-function ``ncalls`` / ``tottime`` /
``cumtime``, plus the workload's event count and wall time, so
consecutive CI runs can be diffed mechanically.
"""

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
sys.path.insert(0, HERE)

import bench_scale  # noqa: E402  (path set up above)
import bench_shard  # noqa: E402

#: Bridge count profiled; big enough that the dataplane dominates the
#: topology build, small enough for a sub-second CI step.
PROFILE_N = 100
#: Rows printed / exported.
TOP = 20


def profile_flood(n: int = PROFILE_N):
    """Profile one flood workload; returns (stats, events, wall)."""
    bench_scale.scale_flood(n)  # warm-up: imports, allocator, caches
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    sim = bench_scale.scale_flood(n)
    profiler.disable()
    wall = time.perf_counter() - start
    return pstats.Stats(profiler), sim.events_processed, wall


def profile_population(n: int = PROFILE_N, endpoints: int = 10_000):
    """Profile the heavy-tailed population workload (bench_scale)."""
    bench_scale.population_flood(n, endpoints)  # warm-up
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    sim, _net, _sampler = bench_scale.population_flood(n, endpoints)
    profiler.disable()
    wall = time.perf_counter() - start
    return pstats.Stats(profiler), sim.events_processed, wall


def profile_flood_sharded(n: int = PROFILE_N, shards: int = 2):
    """Profile the sharded flood; returns (stats, events, wall).

    Thread mode, one profiler per worker thread (``cProfile`` only
    observes the thread that enabled it), merged afterwards — so the
    table includes the shard runtime itself: ``run_until`` rounds,
    frame packing, staged-frame release.
    """
    from repro.netsim.shard import run_sharded

    bench_shard.sharded_flood(n, shards, mode="thread")  # warm-up
    profilers = []

    def worker(shard_id, shard_count, endpoint, n, seed):
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return bench_shard.sharded_flood_worker(
                shard_id, shard_count, endpoint, n, seed)
        finally:
            profiler.disable()
            profilers.append(profiler)

    start = time.perf_counter()
    results = run_sharded(worker, shards, mode="thread", args=(n, 0))
    wall = time.perf_counter() - start
    stats = pstats.Stats(profilers[0])
    for profiler in profilers[1:]:
        stats.add(profiler)
    events = sum(result["events"] for result in results)
    return stats, events, wall


def top_rows(stats: pstats.Stats, limit: int = TOP):
    """The *limit* hottest functions by cumulative time, as dicts."""
    entries = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, line, name = func
        entries.append({
            "file": filename,
            "line": line,
            "function": name,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    entries.sort(key=lambda row: row["cumtime_s"], reverse=True)
    return entries[:limit]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile the flood hot path (top cumulative lines)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the top rows as a JSON artifact")
    parser.add_argument("-n", type=int, default=PROFILE_N,
                        help=f"bridge count to profile (default {PROFILE_N})")
    parser.add_argument("--top", type=int, default=TOP,
                        help=f"rows to print/export (default {TOP})")
    parser.add_argument("--shards", type=int, default=1,
                        help="profile the sharded runtime with N worker "
                             "threads instead of the bare engine "
                             "(default 1 = direct Simulator)")
    parser.add_argument("--endpoints", type=int, default=0,
                        help="profile the population workload instead: "
                             "this many flyweight endpoints behind the "
                             "grid's access ports (0 = plain flood)")
    args = parser.parse_args(argv)

    if args.endpoints > 0:
        stats, events, wall = profile_population(args.n, args.endpoints)
        label = f"population workload (endpoints={args.endpoints})"
    elif args.shards > 1:
        stats, events, wall = profile_flood_sharded(args.n, args.shards)
        label = f"sharded flood (shards={args.shards}, thread mode)"
    else:
        stats, events, wall = profile_flood(args.n)
        label = "flood workload"
    print(f"{label} at n={args.n}: {events} events in "
          f"{wall * 1e3:.1f} ms ({events / wall:,.0f} events/s)\n")
    out = io.StringIO()
    stats.stream = out
    stats.sort_stats("cumulative").print_stats(args.top)
    print(out.getvalue())

    if args.json:
        payload = {
            "bridges": args.n,
            "shards": args.shards,
            "events": events,
            "wall_seconds": round(wall, 6),
            "events_per_sec": round(events / wall),
            "top": top_rows(stats, args.top),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
