"""EXP-E4: engine throughput and memory at scale (supporting).

The scale scenario (``experiments/scale.py``) sweeps topology size for
its *metrics*; this bench measures what size costs the *engine*: a
flood-heavy ARP-Path workload — grid fabric warm-up plus a bulk
gratuitous-ARP race from every corner host — at n = 25, 100 and 225
bridges, recording events/second and the process's peak RSS
(:mod:`repro.netsim.meminfo`). Peak RSS is exactly the machine-
dependent number the scale scenario keeps *out* of its records rows;
here, in a benchmark JSON, is where it belongs.

Run with ``pytest benchmarks/bench_scale.py --benchmark-only``.

``python benchmarks/bench_scale.py`` re-measures and rewrites
``benchmarks/BENCH_scale.json``. The recorded ``reference`` block pins
the flood events/s the *pre-slimming* engine recorded
(``BENCH_engine.json`` before PR 4) so the hot-path slimming pass has
a fixed anchor: ``n225_speedup_vs_pre_pr`` must stay >= 1.3.
"""

from repro.netsim.engine import Simulator
from repro.netsim.meminfo import peak_rss_bytes
from repro.topology import arppath, grid

#: Bridge counts measured (perfect squares: n = side x side grids).
SIZES = (25, 100, 225)

#: Flood events/s recorded by BENCH_engine.json immediately before the
#: PR-4 hot-path slimming pass, on this repo's reference container.
PRE_PR_FLOOD_EVENTS_PER_SEC = 78937


def scale_flood(n: int) -> Simulator:
    """The flood workload at *n* bridges: warm grid + 4-corner ARP race.

    Host announcements go through ``Network.announce_hosts`` — one
    ``schedule_bulk`` batch — so the workload exercises the bulk
    injection path the scale experiments rely on.
    """
    side = int(round(n ** 0.5))
    sim = Simulator(seed=0, keep_trace_records=False)
    net = grid(sim, arppath(), side, side, hosts_at_corners=True)
    net.run(2.0)
    net.announce_hosts()
    net.run(1.0)
    return sim


def test_scale_flood_smallest(benchmark):
    sim = benchmark(lambda: scale_flood(SIZES[0]))
    assert sim.events_processed > 0


def test_scale_flood_largest(benchmark):
    sim = benchmark(lambda: scale_flood(SIZES[-1]))
    assert sim.events_processed > 0


def _measure(fn, rounds: int = 5) -> float:
    """Best wall-clock seconds over *rounds* runs (after one warm-up)."""
    import time
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def regenerate_baseline(path: str = None) -> dict:
    """Measure the scale baselines and write BENCH_scale.json."""
    import json
    import os

    if path is None:
        path = os.path.join(os.path.dirname(__file__), "BENCH_scale.json")

    workloads = {}
    events_per_sec = {}
    for n in SIZES:
        sim = scale_flood(n)
        best = _measure(lambda n=n: scale_flood(n))
        rate = round(sim.events_processed / best)
        events_per_sec[n] = rate
        workloads[f"flood_grid_n{n}"] = {
            "description": f"{n}-bridge ARP-Path grid warm-up + bulk "
                           "4-corner gratuitous-ARP race",
            "bridges": n,
            "events": sim.events_processed,
            "events_per_sec": rate,
            # Monotonic process high-water mark, sampled after this
            # workload (sizes run smallest-first, so growth between
            # entries is attributable to the larger fabric).
            "peak_rss_mib": round(peak_rss_bytes() / (1024 * 1024), 1),
        }
    largest = SIZES[-1]
    baseline = {
        "workloads": workloads,
        "reference": {
            "pre_pr_flood_events_per_sec": PRE_PR_FLOOD_EVENTS_PER_SEC,
            f"n{largest}_speedup_vs_pre_pr": round(
                events_per_sec[largest] / PRE_PR_FLOOD_EVENTS_PER_SEC, 2),
        },
    }
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


if __name__ == "__main__":
    import json

    print(json.dumps(regenerate_baseline(), indent=2, sort_keys=True))
