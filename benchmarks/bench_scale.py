"""EXP-E4: engine throughput and memory at scale (supporting).

The scale scenario (``experiments/scale.py``) sweeps topology size for
its *metrics*; this bench measures what size costs the *engine*: a
flood-heavy ARP-Path workload — grid fabric warm-up plus a bulk
gratuitous-ARP race from every corner host — at n = 25, 100 and 225
bridges, recording events/second and the process's peak RSS
(:mod:`repro.netsim.meminfo`). Peak RSS is exactly the machine-
dependent number the scale scenario keeps *out* of its records rows;
here, in a benchmark JSON, is where it belongs.

Since PR 5 (free-running transmitters) the same workload needs far
fewer events — an uncongested hop schedules one delivery event, not a
``tx_done`` pair — so raw events/s is no longer comparable across the
event-model change: halving the event count halves the numerator too.
Two workload-invariant figures are therefore recorded alongside it:

* ``deliveries_per_sec`` — link deliveries per wall second; the frame
  economy is byte-identical across PR 4/PR 5 (parity is pinned by the
  golden tests), so this number compares engines fairly.
* ``events_per_payload`` — events burnt per delivered frame, the
  efficiency metric this PR drives down (deterministic; guarded with
  an inverted tolerance by ``check_regression.py``).

The ``reference`` block pins the PR-4 event counts so cross-PR
throughput can be read in *PR-4 event units* (``pr4_events / fresh
wall``): the workload is identical, the new engine just needs fewer
events to execute it. Compare ``n225_pr4_event_units_per_sec``
against ``pr4_n225_events_per_sec`` only when the machine states
match — this container's CPU speed swings ~2x within a session, so
the controlled cross-PR figure is the *pinned*
``n225_back_to_back_wall_speedup_vs_pr4`` (old and new trees measured
interleaved in one state).

Run with ``pytest benchmarks/bench_scale.py --benchmark-only``.

``python benchmarks/bench_scale.py`` re-measures and rewrites
``benchmarks/BENCH_scale.json``.
"""

import random

from repro.netsim.engine import Simulator
from repro.netsim.meminfo import MemorySampler, peak_rss_bytes
from repro.topology import arppath, grid
from repro.topology.library import populate_access_ports
from repro.traffic.matrix import TrafficMatrix

#: Bridge counts measured (perfect squares: n = side x side grids).
SIZES = (25, 100, 225)

#: The million-endpoint axis: total simulated endpoints parked behind
#: the n=225 grid's access ports (flyweight populations), swept while
#: the flow count stays fixed — the flyweight claim is that endpoint
#: count costs addresses, not objects, events or wall time.
POPULATION_N = 225
POPULATION_ENDPOINTS = (1_000, 10_000, 100_000)
#: Heavy-tailed flows run over the populations in every cell.
POPULATION_FLOWS = 256

#: Flood events/s recorded by BENCH_engine.json immediately before the
#: PR-4 hot-path slimming pass, on this repo's reference container.
PRE_PR_FLOOD_EVENTS_PER_SEC = 78937

#: Events the PR-4 (per-frame tx_done) event model needed for these
#: exact workloads (from the PR-4 BENCH_scale.json): the anchor for
#: cross-event-model throughput comparison.
PR4_FLOOD_EVENTS = {25: 1163, 100: 5008, 225: 11603}
#: Flood events/s PR 4 recorded at n=225 on this container.
PR4_N225_EVENTS_PER_SEC = 206368
#: Wall-clock speedup of the n=225 workload, PR-5 engine vs PR-4
#: engine, measured interleaved (git stash) in one machine state at
#: PR-5 time: old best 0.0554-0.0566 s vs new best 0.0339-0.0353 s
#: over repeated pairs. Hand-pinned like the anchors above because a
#: regenerate on a different machine state cannot reproduce it — this
#: container's CPU speed swings ~2x within a session.
PR4_BACK_TO_BACK_WALL_SPEEDUP = 1.63


def scale_flood(n: int) -> Simulator:
    """The flood workload at *n* bridges: warm grid + 4-corner ARP race.

    Host announcements go through ``Network.announce_hosts`` — one
    ``schedule_bulk`` batch — so the workload exercises the bulk
    injection path the scale experiments rely on.
    """
    side = int(round(n ** 0.5))
    sim = Simulator(seed=0, keep_trace_records=False)
    net = grid(sim, arppath(), side, side, hosts_at_corners=True)
    net.run(2.0)
    net.announce_hosts()
    net.run(1.0)
    return sim


def population_flood(n: int = POPULATION_N,
                     endpoints: int = POPULATION_ENDPOINTS[0],
                     flows: int = POPULATION_FLOWS):
    """Heavy-tailed traffic over *endpoints* flyweight endpoints.

    Warm *n*-bridge grid, populations behind the corner-host access
    ports, then ``POPULATION_FLOWS`` elephant/mice flows (Zipf sources,
    generation-time draws from seed 0) in one ``schedule_bulk`` batch.
    Returns ``(sim, net, sampler)`` with the sampler holding the
    deterministic engine-memory peaks.
    """
    side = int(round(n ** 0.5))
    sim = Simulator(seed=0, keep_trace_records=False)
    net = grid(sim, arppath(), side, side, hosts_at_corners=True)
    populate_access_ports(net, max(endpoints // len(net.hosts), 1))
    sampler = MemorySampler(sim, interval=0.5)
    sampler.start()
    net.run(2.0)
    matrix = TrafficMatrix(net)
    matrix.elephant_mice(count=flows, rng=random.Random(0),
                         endpoints=sorted(net.populations))
    matrix.start(stagger=1e-4, bulk=True)
    net.run(2.5)
    sampler.stop()
    return sim, net, sampler


def test_scale_flood_smallest(benchmark):
    sim = benchmark(lambda: scale_flood(SIZES[0]))
    assert sim.events_processed > 0


def test_scale_flood_largest(benchmark):
    sim = benchmark(lambda: scale_flood(SIZES[-1]))
    assert sim.events_processed > 0


def _measure(fn, rounds: int = 5) -> float:
    """Best wall-clock seconds over *rounds* runs (after one warm-up)."""
    import time
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def regenerate_baseline(path: str = None) -> dict:
    """Measure the scale baselines and write BENCH_scale.json."""
    import json
    import multiprocessing
    import os

    if path is None:
        path = os.path.join(os.path.dirname(__file__), "BENCH_scale.json")

    workloads = {}
    walls = {}
    for n in SIZES:
        sim = scale_flood(n)
        best = _measure(lambda n=n: scale_flood(n))
        walls[n] = best
        delivered = sim.tracer.frames_delivered
        workloads[f"flood_grid_n{n}"] = {
            "description": f"{n}-bridge ARP-Path grid warm-up + bulk "
                           "4-corner gratuitous-ARP race",
            "bridges": n,
            "events": sim.events_processed,
            "events_per_sec": round(sim.events_processed / best),
            "wall_seconds": round(best, 6),
            "frames_delivered": delivered,
            # Workload-invariant across event-model changes: the frame
            # economy is pinned byte-identical by the golden tests.
            "deliveries_per_sec": round(delivered / best),
            # Efficiency metric (lower is better; deterministic):
            # engine events burnt per delivered frame.
            "events_per_payload": round(
                sim.events_processed / max(delivered, 1), 3),
            # Monotonic process high-water mark, sampled after this
            # workload (sizes run smallest-first, so growth between
            # entries is attributable to the larger fabric).
            "peak_rss_mib": round(peak_rss_bytes() / (1024 * 1024), 1),
        }
    for endpoints in POPULATION_ENDPOINTS:
        sim, net, sampler = population_flood(POPULATION_N, endpoints)
        best = _measure(
            lambda e=endpoints: population_flood(POPULATION_N, e),
            rounds=2)
        delivered = sim.tracer.frames_delivered
        workloads[f"population_grid_n{POPULATION_N}_e{endpoints}"] = {
            "description": f"{POPULATION_N}-bridge grid, {endpoints} "
                           f"flyweight endpoints, {POPULATION_FLOWS} "
                           "heavy-tailed (Zipf elephant/mice) flows",
            "bridges": POPULATION_N,
            "endpoints": net.endpoint_count(),
            "flows": POPULATION_FLOWS,
            "events": sim.events_processed,
            "wall_seconds": round(best, 6),
            "frames_delivered": delivered,
            "deliveries_per_sec": round(delivered / best),
            "events_per_payload": round(
                sim.events_processed / max(delivered, 1), 3),
            # Deterministic engine-memory ceiling (MemorySampler peaks
            # — simulation state, not process RSS) and its per-endpoint
            # quotient: the flyweight claim is that this stays decoupled
            # from the endpoint count.
            "peak_pending_events": sampler.peak_pending_events,
            "peak_wheel_timers": sampler.peak_wheel_timers,
            "peak_pending_per_endpoint": round(
                sampler.peak_pending_events / endpoints, 6),
            "peak_rss_mib": round(peak_rss_bytes() / (1024 * 1024), 1),
        }
    largest = SIZES[-1]
    largest_rate = workloads[f"flood_grid_n{largest}"]["events_per_sec"]
    baseline = {
        "workloads": workloads,
        # Machine context for the wall-clock figures; the sharded bench
        # (bench_shard.py) compares its multi-worker numbers only
        # against baselines recorded at the same CPU count.
        "cpus": multiprocessing.cpu_count(),
        "reference": {
            "pre_pr_flood_events_per_sec": PRE_PR_FLOOD_EVENTS_PER_SEC,
            f"n{largest}_speedup_vs_pre_pr": round(
                largest_rate / PRE_PR_FLOOD_EVENTS_PER_SEC, 2),
            "pr4_flood_events": {str(n): PR4_FLOOD_EVENTS[n]
                                 for n in SIZES},
            "pr4_n225_events_per_sec": PR4_N225_EVENTS_PER_SEC,
            # The identical workload in PR-4 event units (PR-4 event
            # count / fresh wall); same machine state as every other
            # number in this file.
            f"n{largest}_pr4_event_units_per_sec": round(
                PR4_FLOOD_EVENTS[largest] / walls[largest]),
            f"n{largest}_back_to_back_wall_speedup_vs_pr4":
                PR4_BACK_TO_BACK_WALL_SPEEDUP,
        },
    }
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


if __name__ == "__main__":
    import json

    fresh = regenerate_baseline()
    print(json.dumps(fresh, indent=2, sort_keys=True))
    largest = fresh["workloads"][f"flood_grid_n{SIZES[-1]}"]
    print(f"n={SIZES[-1]}: {largest['events_per_sec']:,} events/s, "
          f"{largest['deliveries_per_sec']:,} deliveries/s "
          f"(cpus: {fresh['cpus']})")
