"""EXP-A1 bench: ARP-Proxy broadcast suppression.

Paper claim (§2.2): "ARP broadcast traffic can be reduced dramatically
by implementing ARP Proxy function inside the switches" (citing
EtherProxy).

Expected shape: with the proxy on, fabric ARP frames drop by a factor
that grows with the number of repeat resolutions; zero resolution
failures either way.
"""

from conftest import banner, run_once

from repro.experiments import registry
from repro.metrics.report import format_table

proxy = registry.get("proxy")


def test_proxy_suppression(benchmark):
    result = run_once(benchmark, lambda: proxy.execute(rows=3, cols=3,
                                                       rounds=3))
    banner("EXP-A1 — ARP broadcast suppression (proxy off vs on)")
    print(result.table())
    reduction = result.reduction()
    print(f"\nsuppression factor: {reduction:.2f}x")
    benchmark.extra_info["suppression_factor"] = round(reduction, 2)
    assert reduction > 1.5
    for row in result.rows:
        assert row.resolution_failures == 0


def test_proxy_suppression_grows_with_rounds(benchmark):
    def sweep():
        out = []
        for rounds in (1, 3, 5):
            result = proxy.execute(rows=2, cols=2, rounds=rounds)
            out.append((rounds, result.reduction()))
        return out

    rows = run_once(benchmark, sweep)
    banner("EXP-A1 sweep — suppression factor vs repeat rounds")
    print(format_table(["rounds", "suppression"],
                       [[r, f"{s:.2f}x"] for r, s in rows]))
    factors = [s for _r, s in rows]
    assert factors[-1] > factors[0]  # more repeats, more suppression
