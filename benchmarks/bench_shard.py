"""EXP-E5: sharded-engine throughput (supporting, not from the paper).

Measures the PR-6 sharded runtime (:mod:`repro.netsim.shard`) on the
same workload ``bench_scale`` guards — the n=225 flood: grid warm-up
plus a bulk 4-corner gratuitous-ARP race — at shards = 1, 2 and 4,
recording wall seconds and ``deliveries_per_sec`` per shard count.
Deliveries, not events: the conservative protocol trades heap events
for channel messages, so raw events/s is not comparable across shard
counts, while the frame economy is byte-identical (pinned by the
parity tests) and deliveries/s therefore compares fairly.

Two figures matter beyond raw throughput:

* ``shards_1`` runs the workload *through* ``ShardedSimulator`` — the
  K == 1 degenerate path (no fabric, no rounds) — so its ratio against
  the direct ``Simulator`` run (``shard_1_overhead_vs_direct``) is the
  facade's fixed cost. The acceptance bar is < 5%.
* The recorded ``cpus`` field matters: K workers can only beat one
  engine when the machine has more than one core. On a single-core
  container the multi-shard numbers measure pure protocol overhead
  (speedup <= 1 is the honest ceiling there), and are recorded with
  that caveat — exactly the ``BENCH_sweep.json`` convention for its
  parallel-pool figures.

Run with ``pytest benchmarks/bench_shard.py --benchmark-only``.

``python benchmarks/bench_shard.py`` re-measures and rewrites
``benchmarks/BENCH_shard.json``.
"""

import multiprocessing
import time

from repro.netsim.engine import Simulator
from repro.netsim.shard import (ShardRuntime, ShardedSimulator,
                                derive_shard_seed)
from repro.topology import arppath, grid
from repro.topology.partition import partition_network

import bench_scale

#: Bridge count measured — the largest bench_scale size, where the
#: dataplane dominates and banding actually distributes work.
N = 225
#: Shard counts measured.
SHARD_COUNTS = (1, 2, 4)


def sharded_flood_worker(shard_id: int, shard_count: int, endpoint,
                         n: int, seed: int) -> dict:
    """One shard's slice of the ``bench_scale.scale_flood`` workload.

    Module-level (picklable) so process mode can fork it. Mirrors the
    single-process phases exactly: 2 s warm-up, bulk host announcement,
    1 s flood race.
    """
    side = int(round(n ** 0.5))
    sim = Simulator(seed=derive_shard_seed(seed, shard_id),
                    keep_trace_records=False)
    runtime = ShardRuntime(sim, shard_id, endpoint)
    net = grid(sim, arppath(), side, side, hosts_at_corners=True)
    runtime.adopt(net, partition_network(net, shard_count))
    net.start()
    runtime.run_for(2.0)
    net.announce_hosts()
    runtime.run_for(1.0)
    return {"events": sim.events_processed,
            "delivered": sim.tracer.frames_delivered}


def sharded_flood(n: int = N, shards: int = 1, mode: str = "auto") -> dict:
    """The flood workload across *shards* engines; merged totals."""
    results = ShardedSimulator(shards, mode=mode).run(
        sharded_flood_worker, n, 0)
    return {"events": sum(result["events"] for result in results),
            "delivered": sum(result["delivered"] for result in results)}


def test_sharded_flood_one_shard(benchmark):
    merged = benchmark(lambda: sharded_flood(N, 1))
    assert merged["delivered"] > 0


def test_sharded_flood_four_shards(benchmark):
    merged = benchmark(lambda: sharded_flood(N, 4))
    assert merged["delivered"] > 0


def test_sharded_delivery_parity():
    """The frame economy is shard-count-invariant (deliveries match)."""
    single = sharded_flood(N, 1)
    assert sharded_flood(N, 2)["delivered"] == single["delivered"]
    assert sharded_flood(N, 4)["delivered"] == single["delivered"]


def _measure(fn, rounds: int = 3) -> float:
    """Best wall-clock seconds over *rounds* runs (after one warm-up)."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def regenerate_baseline(path: str = None) -> dict:
    """Measure the sharded flood and write BENCH_shard.json."""
    import json
    import os

    if path is None:
        path = os.path.join(os.path.dirname(__file__), "BENCH_shard.json")

    cpus = multiprocessing.cpu_count()
    direct_wall = _measure(lambda: bench_scale.scale_flood(N))
    entries = {}
    delivered = {}
    for shards in SHARD_COUNTS:
        merged = sharded_flood(N, shards)
        best = _measure(lambda shards=shards: sharded_flood(N, shards))
        delivered[shards] = merged["delivered"]
        entries[f"shards_{shards}"] = {
            "wall_seconds": round(best, 6),
            "frames_delivered": merged["delivered"],
            "deliveries_per_sec": round(merged["delivered"] / best),
            "cpus": cpus,
        }
    # The contract the wall numbers lean on: identical frame economy at
    # every shard count (the parity tests pin the full records; this
    # re-checks the invariant in the measured configuration).
    for shards in SHARD_COUNTS[1:]:
        assert delivered[shards] == delivered[SHARD_COUNTS[0]], \
            f"delivery parity broken at shards={shards}"

    single_wall = entries["shards_1"]["wall_seconds"]
    baseline = {
        "workload": {
            "description": f"{N}-bridge ARP-Path grid warm-up + bulk "
                           "4-corner gratuitous-ARP race, sharded "
                           "(bench_scale.scale_flood under the "
                           "conservative PDES runtime)",
            "bridges": N,
            "frames_delivered": delivered[SHARD_COUNTS[0]],
        },
        "cpus": cpus,
        "direct_wall_seconds": round(direct_wall, 6),
        # The ShardedSimulator facade at K=1 vs the bare engine: the
        # degenerate path's fixed cost (acceptance bar: < 5%).
        "shard_1_overhead_vs_direct": round(
            single_wall / direct_wall - 1.0, 4),
        **entries,
    }
    for shards in SHARD_COUNTS[1:]:
        baseline[f"speedup_{shards}_vs_1"] = round(
            single_wall / entries[f"shards_{shards}"]["wall_seconds"], 3)
    if cpus == 1:
        baseline["note"] = (
            "recorded on a single-core container: multi-shard walls "
            "measure protocol overhead, not parallel speedup — the "
            "deliveries figures are parity numbers, and speedup > 1 "
            "is only reachable with cpus > 1")
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


if __name__ == "__main__":
    import json

    print(json.dumps(regenerate_baseline(), indent=2, sort_keys=True))
