"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures (see DESIGN.md
§3) and prints the same rows the paper reports. Experiments run once
per bench (``rounds=1``) — the interesting output is the table, not the
wall-clock of the harness; engine micro-benchmarks use normal
multi-round timing.

Run with ``-s`` to see the result tables::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def banner(title: str) -> None:
    print("\n" + "#" * 72)
    print(f"# {title}")
    print("#" * 72)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
