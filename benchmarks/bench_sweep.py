"""EXP-E3: sweep-runner throughput (supporting, not from the paper).

Measures cells/second of the parallel sweep runner on the acceptance
grid — ``sweep stretch --seeds 0 1 2 3`` — at ``jobs=1`` (in-process)
vs ``jobs=4`` (multiprocessing pool), and asserts the parallel path is
deterministic: identical rows and aggregates at any jobs level.

Run with ``pytest benchmarks/bench_sweep.py --benchmark-only``.

``python benchmarks/bench_sweep.py`` re-measures and rewrites
``benchmarks/BENCH_sweep.json``. The recorded ``cpus`` field matters:
the pool can only beat in-process execution when the machine has more
than one core (single-core containers record a speedup <= 1, which is
the honest ceiling there).
"""

import multiprocessing
import time

from repro.experiments import registry, runner

#: The acceptance grid: the stretch scenario at its default parameters,
#: one cell per seed.
SEEDS = [0, 1, 2, 3]
JOBS_PARALLEL = 4


def stretch_cells():
    return runner.expand_grid(["stretch"], seeds=SEEDS)


def run_grid(jobs: int) -> runner.SweepReport:
    return runner.SweepRunner(stretch_cells(), jobs=jobs).run()


def test_sweep_serial_throughput(benchmark):
    report = benchmark.pedantic(lambda: run_grid(1), rounds=1,
                                iterations=1)
    assert report.ok and len(report.cells) == len(SEEDS)


def test_sweep_parallel_throughput(benchmark):
    report = benchmark.pedantic(lambda: run_grid(JOBS_PARALLEL), rounds=1,
                                iterations=1)
    assert report.ok and len(report.cells) == len(SEEDS)


def test_parallel_rows_match_serial():
    serial = run_grid(1)
    parallel = run_grid(JOBS_PARALLEL)
    assert parallel.rows() == serial.rows()
    assert parallel.summary_rows() == serial.summary_rows()


def _measure(jobs: int, rounds: int = 3) -> float:
    """Best wall-clock seconds over *rounds* runs (after one warm-up)."""
    run_grid(jobs)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_grid(jobs)
        best = min(best, time.perf_counter() - start)
    return best


def regenerate_baseline(path: str = None) -> dict:
    """Measure sweep throughput and write BENCH_sweep.json."""
    import os

    from repro.metrics.report import write_json

    if path is None:
        path = os.path.join(os.path.dirname(__file__), "BENCH_sweep.json")

    cells = len(stretch_cells())
    serial_dt = _measure(1)
    parallel_dt = _measure(JOBS_PARALLEL)
    baseline = {
        "grid": {
            "description": "sweep stretch --seeds 0 1 2 3 at default "
                           "parameters (the acceptance grid)",
            "cells": cells,
        },
        "cpus": multiprocessing.cpu_count(),
        "jobs_1": {
            "wall_seconds": round(serial_dt, 6),
            "cells_per_sec": round(cells / serial_dt, 3),
        },
        f"jobs_{JOBS_PARALLEL}": {
            "wall_seconds": round(parallel_dt, 6),
            "cells_per_sec": round(cells / parallel_dt, 3),
        },
        "parallel_speedup": round(serial_dt / parallel_dt, 3),
    }
    write_json(path, baseline)
    return baseline


if __name__ == "__main__":
    import json

    print(json.dumps(regenerate_baseline(), indent=2, sort_keys=True))
