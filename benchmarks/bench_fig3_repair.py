"""EXP-F3 bench: regenerate the Fig. 3 path-repair demonstration.

Paper claim (§3.2): Path Repair restores the stream after successive
link failures with "minimal effect on the streamed video".

Expected shape: ARP-Path outages are sub-frame-interval (sub-ms to
low-ms) with zero chunk loss; STP stalls for ~2 forward delays per
failure (3 s at 10x-scaled timers = 30 s at IEEE defaults) and loses a
frame-rate-proportional pile of chunks.
"""

from conftest import banner, run_once

from repro.experiments import fig3_repair, registry
from repro.metrics.report import format_table
from repro.metrics.stats import summarize

fig3 = registry.get("fig3")


def test_fig3_repair_comparison(benchmark):
    result = run_once(benchmark, lambda: fig3.execute(failures=2))
    banner("Fig. 3 — stream disruption per failure (ARP-Path vs STP)")
    print(result.table())
    arp = next(r for r in result.rows if r.protocol == "arppath")
    stp_row = next(r for r in result.rows if r.protocol.startswith("stp"))
    print(f"\nARP-Path repair times (bridge-measured): "
          + ", ".join(f"{t * 1e6:.0f}us" for t in arp.bridge_repair_times))
    print(f"ARP-Path delivery: {arp.delivery_rate:.3f}, "
          f"STP delivery: {stp_row.delivery_rate:.3f}")
    worst_arp = max(o.outage for o in arp.outcomes)
    worst_stp = max(o.outage for o in stp_row.outcomes)
    benchmark.extra_info["arppath_worst_outage_ms"] = round(worst_arp * 1e3, 3)
    benchmark.extra_info["stp_worst_outage_ms"] = round(worst_stp * 1e3, 1)
    assert worst_stp / worst_arp > 100
    assert arp.delivery_rate == 1.0


def test_fig3_repair_time_distribution(benchmark):
    """Many seeds: the distribution of ARP-Path repair times."""
    from repro.experiments.common import spec

    def sweep():
        times = []
        for seed in range(5):
            row = fig3_repair.run_protocol(spec("arppath"), failures=2,
                                           seed=seed)
            times.extend(row.bridge_repair_times)
        return times

    times = run_once(benchmark, sweep)
    banner("Fig. 3 — repair time distribution over 5 seeded runs")
    stats = summarize(times).scaled(1e6)
    print(format_table(
        ["n", "min_us", "median_us", "mean_us", "p95_us", "max_us"],
        [[stats.count, stats.min, stats.median, stats.mean, stats.p95,
          stats.max]]))
    assert stats.max < 10_000  # all repairs complete within 10 ms
