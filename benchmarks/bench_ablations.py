"""EXP-A3 bench: ablations on the ARP-Path design knobs.

The design decisions DESIGN.md §4 calls out, each swept:

* lock timeout vs the race duration (below it: re-lock churn, losses),
* repair buffer on/off (off: the outage's frames are simply lost),
* hello-based vs static vs absent port classification (absent: repair
  cannot locate the source edge and never starts).
"""

from conftest import banner, run_once

from repro.experiments import ablations


def test_lock_timeout_sweep(benchmark):
    rows = run_once(benchmark,
                    lambda: ablations.sweep_lock_timeout(
                        timeouts=[0.0002, 0.002, 0.8, 5.0]))
    banner("EXP-A3a — lock timeout sweep (race lasts ~500us here)")
    from repro.metrics.report import format_table
    print(format_table(
        ["lock_timeout_s", "rtt_mean_us", "losses", "relocks", "filtered"],
        [[r.lock_timeout,
          r.rtt_mean * 1e6 if r.rtt_mean is not None else None,
          r.losses, r.relocks, r.discovery_filtered] for r in rows]))
    below, *above = rows
    assert below.relocks > 0  # sub-race timeout: the guard fails
    assert all(r.relocks == 0 for r in above)
    assert all(r.losses == 0 for r in above)


def test_repair_buffer_sweep(benchmark):
    rows = run_once(benchmark,
                    lambda: ablations.sweep_repair_buffer(sizes=[0, 4, 32]))
    banner("EXP-A3b — repair buffer size")
    from repro.metrics.report import format_table
    print(format_table(
        ["buffer", "outage_ms", "chunks_lost", "buffered", "drops"],
        [[r.buffer_size, r.outage_ms, r.chunks_lost, r.buffered,
          r.buffer_drops] for r in rows]))
    without = rows[0]
    with_buffer = rows[-1]
    assert without.chunks_lost > with_buffer.chunks_lost


def test_port_classification_sweep(benchmark):
    rows = run_once(benchmark, ablations.sweep_hello)
    banner("EXP-A3c — port classification: hellos / static / none")
    from repro.metrics.report import format_table
    print(format_table(
        ["hellos", "static_roles", "repaired", "outage_ms"],
        [[r.hello_enabled, r.static_roles, r.repaired, r.outage_ms]
         for r in rows]))
    dynamic, static, none = rows
    assert dynamic.repaired and static.repaired
    assert not none.repaired
