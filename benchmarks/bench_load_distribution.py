"""EXP-A2 bench: load distribution and path diversity.

Paper claim (§2.2): "Load distribution and path diversity".

Expected shape: on a leaf/spine fabric ARP-Path uses every link with a
low coefficient of variation; STP and SPB funnel all flows through one
spine (half the links idle, cv = 1 with two spines).
"""

from conftest import banner, run_once

from repro.experiments import loadbalance, registry
from repro.experiments.common import spec
from repro.metrics.report import format_table


def test_load_distribution(benchmark):
    # Note packets=30 (the module default the pre-registry bench used),
    # not the CLI default of 50.
    result = run_once(benchmark, lambda: registry.get(
        "loadbalance").execute(packets=30,
                               protocols=["arppath", "stp", "spb"],
                               stp_scale=0.1))
    banner("EXP-A2 — per-link load over a 4-leaf/2-spine fabric")
    print(result.table())
    arp = next(r for r in result.rows if r.protocol == "arppath")
    stp_row = next(r for r in result.rows if r.protocol.startswith("stp"))
    benchmark.extra_info["arppath_cv"] = round(arp.report.cv, 3)
    benchmark.extra_info["stp_cv"] = round(stp_row.report.cv, 3)
    assert arp.report.used_links == arp.report.total_links
    assert arp.report.cv < stp_row.report.cv
    assert all(r.delivery_rate == 1.0 for r in result.rows)


def test_load_distribution_idle_vs_loaded_resolution(benchmark):
    """Ablation: resolving paths on an idle fabric loses the diversity
    that queue-steered races provide."""

    def both():
        loaded = loadbalance.run_protocol(spec("arppath"),
                                          resolve_under_load=True)
        idle = loadbalance.run_protocol(spec("arppath"),
                                        resolve_under_load=False)
        return loaded, idle

    loaded, idle = run_once(benchmark, both)
    banner("EXP-A2 ablation — resolution under load vs on idle fabric")
    print(format_table(
        ["resolution", "links_used", "cv", "max/mean"],
        [["under load", loaded.report.used_links, loaded.report.cv,
          loaded.report.max_over_mean],
         ["idle fabric", idle.report.used_links, idle.report.cv,
          idle.report.max_over_mean]]))
    assert loaded.report.used_links >= idle.report.used_links
