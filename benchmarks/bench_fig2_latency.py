"""EXP-F2 bench: regenerate the Fig. 2 latency comparison.

Paper claim (§3.1): "ARP-Path chooses lower latency paths as opposed to
STP that builds a routing tree rooted at an arbitrary switch."

Expected shape: ARP-Path takes a low-latency ring path (~50 us RTT);
STP and SPB take the 1-hop high-latency cross (~1 ms RTT); speedup is
roughly the cross/ring latency ratio (~20x with default parameters).
"""

from conftest import banner, run_once

from repro.experiments import registry

fig2 = registry.get("fig2")


def test_fig2_latency_comparison(benchmark):
    # The registry defaults are the paper's comparison: arppath vs
    # stp(x0.1) vs spb at 20 probes.
    result = run_once(benchmark, lambda: fig2.execute(probes=20))
    banner("Fig. 2 — ARP-Path vs STP vs SPB latency (demo topology)")
    print(result.table())
    speedup = result.speedup()
    print(f"\nARP-Path speedup over STP: {speedup:.1f}x")
    benchmark.extra_info["speedup_vs_stp"] = round(speedup, 2)
    assert speedup > 5


def test_fig2_sensitivity_to_cross_latency(benchmark):
    """Sweep the cross-cable latency: the ARP-Path advantage tracks it."""

    def sweep():
        rows = []
        for cross_us in (50.0, 200.0, 500.0, 2000.0):
            result = fig2.execute(probes=10, cross_latency_us=cross_us,
                                  protocols=["arppath", "stp"])
            rows.append((cross_us * 1e-6, result.speedup()))
        return rows

    rows = run_once(benchmark, sweep)
    banner("Fig. 2 sweep — speedup vs cross-link latency")
    from repro.metrics.report import format_table
    print(format_table(["cross_latency_us", "arppath_speedup"],
                       [[c * 1e6, f"{s:.1f}x"] for c, s in rows]))
    speedups = [s for _c, s in rows]
    assert speedups == sorted(speedups)  # monotone in cross latency
