"""EXP-C1 bench: controller round-trip repair vs ARP-Path in-band.

The centralized baseline's repair cost is structural: a cut detected
at the dataplane must travel to the controller, clear the barriered
FLOW_REMOVEs and come back as FLOW_INSTALLs — exactly
``2 x rtt + install_latency`` of control-channel latency per repair
(see docs/ARCHITECTURE.md §9). ARP-Path repairs in-band at dataplane
propagation speed. This bench replays the Fig. 3 scripted cuts under
both families and records the gap.

Everything recorded here is *simulated* time — deterministic, not
wall-clock — so ``check_regression.py`` guards these figures with the
tight efficiency ceiling, not the bench-noise tolerance.

Run with ``pytest benchmarks/bench_controller.py --benchmark-only -s``.

``python benchmarks/bench_controller.py`` re-measures and rewrites
``benchmarks/BENCH_controller.json``.
"""

from conftest import banner, run_once

from repro.experiments import fig3_repair
from repro.experiments.common import spec
from repro.metrics.report import format_table
from repro.switching.controller import ControllerConfig

FAILURES = 2
SEED = 0

#: The pinned per-repair control-plane latency at default config.
_DEFAULT = ControllerConfig()
PINNED_REPAIR_S = 2 * _DEFAULT.rtt + _DEFAULT.install_latency


def measure() -> dict:
    """Fig. 3 scripted cuts under both families; simulated-time figures."""
    arp = fig3_repair.run_protocol(spec("arppath"), failures=FAILURES,
                                   seed=SEED)
    ctl = fig3_repair.run_protocol(spec("controller"), failures=FAILURES,
                                   seed=SEED)
    out = {}
    for label, row in (("arppath", arp), ("controller", ctl)):
        repairs = sorted(row.bridge_repair_times)
        out[label] = {
            "worst_outage_ms": round(
                max(o.outage for o in row.outcomes) * 1e3, 4),
            "delivery_rate": row.delivery_rate,
            "repairs": len(repairs),
            "repair_latency_s_max": max(repairs) if repairs else None,
        }
    out["outage_ratio_controller_vs_arppath"] = round(
        out["controller"]["worst_outage_ms"]
        / out["arppath"]["worst_outage_ms"], 3)
    return out


def test_controller_vs_arppath_repair(benchmark):
    figures = run_once(benchmark, measure)
    banner("EXP-C1 — repair latency: controller round trip vs in-band")
    print(format_table(
        ["family", "worst_outage_ms", "delivery", "repairs",
         "repair_latency_max_us"],
        [[label,
          figures[label]["worst_outage_ms"],
          figures[label]["delivery_rate"],
          figures[label]["repairs"],
          figures[label]["repair_latency_s_max"] * 1e6]
         for label in ("arppath", "controller")]))
    print(f"\ncontroller/arppath worst-outage ratio: "
          f"{figures['outage_ratio_controller_vs_arppath']}x "
          f"(pinned controller repair: {PINNED_REPAIR_S * 1e3:.2f} ms)")
    benchmark.extra_info.update(
        controller_worst_outage_ms=figures["controller"]["worst_outage_ms"],
        arppath_worst_outage_ms=figures["arppath"]["worst_outage_ms"])
    # The structural claim: every controller repair costs exactly the
    # control-channel round trip plus the flow-mod delay...
    assert figures["controller"]["repair_latency_s_max"] \
        == round(PINNED_REPAIR_S, 12) or abs(
            figures["controller"]["repair_latency_s_max"]
            - PINNED_REPAIR_S) < 1e-9
    # ...which ARP-Path's in-band exchange beats on the worst cut.
    assert figures["controller"]["worst_outage_ms"] \
        > figures["arppath"]["worst_outage_ms"]
    # Neither family loses the stream (outages stay sub-frame-interval).
    assert figures["arppath"]["delivery_rate"] == 1.0
    assert figures["controller"]["delivery_rate"] == 1.0


def regenerate_baseline(path: str = None) -> dict:
    """Measure and rewrite BENCH_controller.json."""
    import json
    import os

    if path is None:
        path = os.path.join(os.path.dirname(__file__),
                            "BENCH_controller.json")
    figures = measure()
    payload = {
        "description": "Fig. 3 scripted-cut repair latency, controller "
                       "(out-of-band round trip) vs ARP-Path (in-band); "
                       "simulated-time figures, deterministic",
        "failures": FAILURES,
        "seed": SEED,
        "pinned_controller_repair_s": PINNED_REPAIR_S,
        **figures,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
    return payload


if __name__ == "__main__":
    regenerate_baseline()
