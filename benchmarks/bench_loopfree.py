"""EXP-P2 bench: loop freedom and no-blocked-links.

Paper claims (abstract, §2.2): "ARP-Path exhibits loop-freedom, does
not block links ... neither needs a spanning tree protocol to prevent
loops nor a link state protocol".

Expected shape: zero duplicate deliveries and no storms on loopy
topologies for ARP-Path (and the control-plane baselines); ARP-Path
leaves no link unused while STP's blocked links carry nothing. The
plain learning switch shows the storm ARP-Path prevents.
"""

from conftest import banner, run_once

from repro.experiments import registry
from repro.metrics.report import format_table

loopfree = registry.get("loopfree")


def test_loopfree_and_link_usage(benchmark):
    result = run_once(benchmark, lambda: loopfree.execute(
        topologies=["grid", "ring"],
        protocols=["arppath", "stp", "spb"], stp_scale=0.1))
    banner("EXP-P2 — loop freedom and link utilisation")
    print(result.table())
    for row in result.rows:
        assert row.duplicate_deliveries == 0
        assert not row.storm
    arp_ring = next(r for r in result.rows
                    if r.protocol == "arppath" and r.topology == "ring")
    stp_ring = next(r for r in result.rows
                    if r.protocol.startswith("stp") and r.topology == "ring")
    assert arp_ring.used_links == arp_ring.total_links
    assert stp_ring.used_links < stp_ring.total_links


def test_learning_switch_storms_for_contrast(benchmark):
    """The failure mode the protocol exists to prevent, quantified."""
    from repro.netsim.engine import Simulator
    from repro.topology import learning, ring

    def storm():
        sim = Simulator(seed=0, keep_trace_records=False)
        net = ring(sim, learning(), 4)
        net.start()
        net.host("H0").gratuitous_arp()
        sim.run(until=0.05, max_events=100_000)
        return sim.tracer.frames_sent

    sent = run_once(benchmark, storm)
    banner("EXP-P2 contrast — plain learning switches on the same ring")
    print(format_table(
        ["protocol", "frames from ONE broadcast (50ms, capped)"],
        [["learning switch (no control plane)", sent]]))
    assert sent > 5_000  # unbounded storm, capped only by the event limit
