"""EXP-P1 bench: minimum-latency path selection vs the Dijkstra oracle.

Paper claim (§2.2): "The selected path is the minimum latency path as
found by the ARP Request message."

Expected shape: ARP-Path stretch == 1.0 on every pair of every random
topology (idle network); STP's tree paths are substantially worse and
get worse with size.
"""

from conftest import banner, run_once

from repro.experiments import registry
from repro.metrics.report import format_table

stretch = registry.get("stretch")


def test_stretch_random_graphs(benchmark):
    result = run_once(benchmark, lambda: stretch.execute(
        bridges=10, hosts=4, seeds=[0, 1, 2],
        protocols=["arppath", "stp"], stp_scale=0.1))
    banner("EXP-P1 — path stretch vs latency oracle (random graphs)")
    print(result.table())
    arp_rows = [r for r in result.rows if r.protocol == "arppath"]
    assert all(r.optimal_fraction == 1.0 for r in arp_rows)


def test_stretch_scales_with_network_size(benchmark):
    def sweep():
        out = []
        for n in (6, 10, 14):
            result = stretch.execute(bridges=n, hosts=3, seeds=[0],
                                     protocols=["arppath", "stp"],
                                     stp_scale=0.1)
            row = {r.protocol.split("(")[0]: r.summary().mean
                   for r in result.rows}
            out.append((n, row["arppath"], row["stp"]))
        return out

    rows = run_once(benchmark, sweep)
    banner("EXP-P1 sweep — mean stretch vs network size")
    print(format_table(["bridges", "arppath_stretch", "stp_stretch"],
                       [[n, a, s] for n, a, s in rows]))
    for _n, arppath_stretch, stp_stretch in rows:
        assert arppath_stretch <= stp_stretch
