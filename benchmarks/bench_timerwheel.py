"""EXP-E2: timer-wheel micro-benchmarks (supporting, not from the paper).

Quantifies what the hierarchical timer wheel buys over heap scheduling
for the aging-timer access pattern: high volume, short deadlines, most
timers cancelled (refreshed) before they fire. This is exactly the load
the unified table layer (``repro.netsim.aging.AgingStore``) puts on the
engine, so the numbers here are the perf floor for table-heavy
workloads.

Run with ``pytest benchmarks/bench_timerwheel.py --benchmark-only``.

``python benchmarks/bench_timerwheel.py`` re-measures the engine
baselines and rewrites ``benchmarks/BENCH_engine.json`` so future PRs
have a perf trajectory to compare against.
"""

from repro.netsim.engine import Simulator

#: Timers per churn round; ~the entry count of a busy locked table.
CHURN_TIMERS = 10_000
#: One timer in CHURN_STRIDE survives; the rest are cancelled before
#: firing (aging entries are usually refreshed, so their timers usually
#: die unfired).
CHURN_STRIDE = 10
#: Timers that actually fire per churn round.
CHURN_FIRED = len(range(0, CHURN_TIMERS, CHURN_STRIDE))


def _churn(schedule) -> Simulator:
    """Schedule CHURN_TIMERS short timers, cancel most, run to drain."""
    sim = Simulator(seed=0, keep_trace_records=False)
    events = [schedule(sim, 0.1 + (i % 97) * 0.01)
              for i in range(CHURN_TIMERS)]
    for index, event in enumerate(events):
        if index % CHURN_STRIDE != 0:
            event.cancel()
    sim.run()
    return sim


def churn_heap_only() -> Simulator:
    """The pre-wheel pattern: every timer is a heap event."""
    return _churn(lambda sim, delay: sim.schedule(delay, lambda: None))


def churn_wheel() -> Simulator:
    """The wheel pattern: cancelled timers never touch the heap."""
    return _churn(lambda sim, delay: sim.schedule_timer(delay, lambda: None))


def bulk_injection() -> Simulator:
    """schedule_bulk: one heapify instead of n pushes."""
    sim = Simulator(seed=0, keep_trace_records=False)
    sim.schedule_bulk((0.1 + (i % 97) * 0.01, lambda: None)
                      for i in range(CHURN_TIMERS))
    sim.run()
    return sim


def test_timer_churn_heap_only(benchmark):
    sim = benchmark(churn_heap_only)
    assert sim.events_processed == CHURN_FIRED


def test_timer_churn_wheel(benchmark):
    sim = benchmark(churn_wheel)
    assert sim.events_processed == CHURN_FIRED


def test_bulk_injection(benchmark):
    sim = benchmark(bulk_injection)
    assert sim.events_processed == CHURN_TIMERS


def _measure(fn, rounds: int = 5) -> float:
    """Best wall-clock seconds over *rounds* runs (after one warm-up)."""
    import time
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def flood_workload() -> Simulator:
    """The bench_engine flood-heavy workload (grid fabric + ARP race)."""
    from repro.topology import arppath, grid

    sim = Simulator(seed=0, keep_trace_records=False)
    net = grid(sim, arppath(), 4, 4, hosts_at_corners=True)
    net.run(2.0)
    net.host("H0").gratuitous_arp()
    net.run(1.0)
    return sim


def regenerate_baseline(path: str = None) -> dict:
    """Measure the engine baselines and write BENCH_engine.json."""
    import json
    import os

    if path is None:
        path = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")

    flood_sim = flood_workload()
    flood_dt = _measure(flood_workload)
    heap_dt = _measure(churn_heap_only)
    wheel_dt = _measure(churn_wheel)
    fired = CHURN_FIRED
    baseline = {
        "workloads": {
            "flood_grid4x4": {
                "description": "bench_engine flood workload: 4x4 ARP-Path "
                               "grid warm-up + gratuitous ARP race",
                "events": flood_sim.events_processed,
                "events_per_sec": round(flood_sim.events_processed
                                        / flood_dt),
            },
            "timer_churn_heap_only": {
                "description": f"{CHURN_TIMERS} short timers, "
                               f"{100 - 100 // CHURN_STRIDE}% cancelled,"
                               " heap-scheduled",
                "events_fired": fired,
                "wall_seconds": round(heap_dt, 6),
            },
            "timer_churn_wheel": {
                "description": f"{CHURN_TIMERS} short timers, "
                               f"{100 - 100 // CHURN_STRIDE}% cancelled,"
                               " wheel-scheduled",
                "events_fired": fired,
                "wall_seconds": round(wheel_dt, 6),
                "speedup_vs_heap": round(heap_dt / wheel_dt, 3),
            },
        },
    }
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


if __name__ == "__main__":
    import json

    print(json.dumps(regenerate_baseline(), indent=2, sort_keys=True))
