"""EXP-E4: serve-path throughput (supporting, not from the paper).

Measures the overhead of running the acceptance grid — ``sweep
stretch --seeds 0 1 2 3`` — through the full ``repro serve`` path
(HTTP submit -> durable store -> job worker -> pool -> SQLite records
-> NDJSON stream) against the same grid on a bare ``SweepRunner``,
and asserts the streamed records are byte-identical to the direct
rows.

Run with ``pytest benchmarks/bench_serve.py --benchmark-only``.

``python benchmarks/bench_serve.py`` re-measures and rewrites
``benchmarks/BENCH_serve.json``. The interesting number is
``serve_overhead`` — serve wall over direct wall; the daemon adds
validation, SQLite writes and HTTP polling on top of the identical
pool execution, so the ratio should stay a small constant.
"""

import json
import tempfile
import time
import urllib.request

from repro.experiments import registry, runner
from repro.metrics.report import record_line
from repro.server.daemon import Daemon, DaemonConfig

registry.load_all()

#: The acceptance grid, as the HTTP API spells it.
SEEDS = [0, 1, 2, 3]
SPEC = {"scenario": "stretch", "seeds": SEEDS, "jobs": 2}
POOL = 2


def _post(base, path, payload):
    req = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req) as response:
        return json.loads(response.read().decode())


def _get(base, path):
    with urllib.request.urlopen(base + path) as response:
        return response.read().decode()


def serve_grid():
    """Submit SPEC to a fresh daemon; return the streamed NDJSON lines."""
    with tempfile.TemporaryDirectory() as tmp:
        daemon = Daemon(DaemonConfig(
            host="127.0.0.1", port=0, db=tmp + "/serve.db",
            workers=1, pool=POOL))
        daemon.start()
        base = "http://{}:{}".format(*daemon.address)
        try:
            job = _post(base, "/v1/jobs", SPEC)["job"]
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                state = json.loads(_get(
                    base, f"/v1/jobs/{job['id']}"))["job"]["state"]
                if state in ("completed", "failed", "cancelled"):
                    break
                time.sleep(0.02)
            assert state == "completed", state
            body = _get(base, f"/v1/jobs/{job['id']}/records")
            return body.splitlines()
        finally:
            daemon.stop()


def direct_grid():
    """The same grid on a bare SweepRunner; returns canonical lines."""
    cells = runner.expand_grid(["stretch"], seeds=SEEDS)
    report = runner.SweepRunner(cells, jobs=POOL).run()
    assert report.ok
    return [record_line(row) for row in report.rows()]


def test_serve_throughput(benchmark):
    lines = benchmark.pedantic(serve_grid, rounds=1, iterations=1)
    assert len(lines) >= len(SEEDS)


def test_direct_throughput(benchmark):
    lines = benchmark.pedantic(direct_grid, rounds=1, iterations=1)
    assert len(lines) >= len(SEEDS)


def test_serve_records_match_direct():
    assert serve_grid() == direct_grid()


def _measure(fn, rounds: int = 3) -> float:
    """Best wall-clock seconds over *rounds* runs (after one warm-up)."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def regenerate_baseline(path: str = None) -> dict:
    """Measure serve-path throughput and write BENCH_serve.json."""
    import os

    from repro.metrics.report import write_json

    if path is None:
        path = os.path.join(os.path.dirname(__file__), "BENCH_serve.json")

    cells = len(SEEDS)
    direct_dt = _measure(direct_grid)
    serve_dt = _measure(serve_grid)
    baseline = {
        "grid": {
            "description": "serve job {scenario: stretch, seeds: "
                           "[0, 1, 2, 3]} vs the same grid on a bare "
                           "SweepRunner (the acceptance grid)",
            "cells": cells,
        },
        "direct": {
            "wall_seconds": round(direct_dt, 6),
            "cells_per_sec": round(cells / direct_dt, 3),
        },
        "serve": {
            "wall_seconds": round(serve_dt, 6),
            "cells_per_sec": round(cells / serve_dt, 3),
        },
        "serve_overhead": round(serve_dt / direct_dt, 3),
    }
    write_json(path, baseline)
    return baseline


if __name__ == "__main__":
    print(json.dumps(regenerate_baseline(), indent=2, sort_keys=True))
