"""Bench regression guard: fresh numbers vs the checked-in baselines.

Re-measures the engine (``bench_timerwheel.regenerate_baseline``),
sweep-runner (``bench_sweep.regenerate_baseline``), scale
(``bench_scale.regenerate_baseline``) and sharded-engine
(``bench_shard.regenerate_baseline``) benchmarks, writes the fresh JSON
next to ``--out-dir`` (CI uploads it as an artifact), and compares the
throughput figures against ``BENCH_engine.json`` / ``BENCH_sweep.json``
/ ``BENCH_scale.json`` / ``BENCH_shard.json`` /
``BENCH_chaos.json`` with a generous noise
tolerance.

Per the bench-noise protocol, wall-clock numbers on shared runners are
noisy (easily ±30-40%), so the guard only fails on a drop larger than
``--tolerance`` (default 40%) — it catches order-of-magnitude
regressions (an accidentally quadratic hot path), not percent-level
drift. Parallel sweep figures are only compared when the runner has
the same CPU count the baseline was recorded on.

A failing check prints the recorded baseline, the fresh measurement,
the ratio and the configured tolerance for every failing workload.
Malformed checkouts exit with status 2 and a *named* error instead of
a bare traceback, symmetrically at both granularities: a baseline file
missing an expected key raises ``BaselineKeyMissing``, and a missing
``BENCH_*.json`` file itself raises ``BaselineFileMissing`` (both say
which ``python benchmarks/bench_*.py`` regenerates it).

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/check_regression.py --out-dir fresh

Exit status 0 = within tolerance, 1 = regression, 2 = malformed
baseline.
"""

import argparse
import json
import multiprocessing
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
sys.path.insert(0, HERE)

import bench_chaos  # noqa: E402  (path set up above)
import bench_controller  # noqa: E402
import bench_scale  # noqa: E402
import bench_shard  # noqa: E402
import bench_sweep  # noqa: E402
import bench_timerwheel  # noqa: E402


#: Allowed fractional rise for deterministic lower-is-better metrics
#: (events/payload): only rounding headroom, not wall-clock noise.
EFFICIENCY_TOLERANCE = 0.01


class BaselineFileMissing(FileNotFoundError):
    """A BENCH_*.json baseline file this guard needs does not exist.

    Named (and exit-status-2) for the same reason as
    :class:`BaselineKeyMissing`: a missing baseline is a malformed
    checkout, not a performance regression, and the fix — run the
    matching ``benchmarks/bench_*.py`` — belongs in the error text,
    not in a bare ``FileNotFoundError`` traceback.
    """

    def __init__(self, filename):
        super().__init__(filename)
        self.filename = filename

    def __str__(self):
        return (f"baseline file missing: {self.filename} is not checked "
                f"in next to this guard — regenerate it with the "
                f"matching benchmarks/bench_*.py script")


class BaselineKeyMissing(KeyError):
    """A BENCH_*.json file lacks a key this guard compares."""

    def __init__(self, filename, path):
        super().__init__(path)
        self.filename = filename
        self.path = path

    def __str__(self):
        return (f"baseline key missing: {self.filename} has no "
                f"{self.path!r} — regenerate it with the matching "
                f"benchmarks/bench_*.py script")


def _load(name):
    try:
        with open(os.path.join(HERE, name)) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise BaselineFileMissing(name) from None


def _dig(payload, filename, *path):
    """Nested lookup that names the file and key path on a miss."""
    value = payload
    for key in path:
        try:
            value = value[key]
        except (KeyError, TypeError):
            raise BaselineKeyMissing(filename, ".".join(map(str, path))) \
                from None
    return value


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare fresh bench numbers against the baselines")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional throughput drop "
                             "(default 0.40 = 40%%)")
    parser.add_argument("--out-dir", default="bench-fresh",
                        help="directory for the freshly measured JSON")
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    fresh_engine = bench_timerwheel.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_engine.json"))
    fresh_sweep = bench_sweep.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_sweep.json"))
    fresh_scale = bench_scale.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_scale.json"))
    fresh_shard = bench_shard.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_shard.json"))
    fresh_controller = bench_controller.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_controller.json"))
    fresh_chaos = bench_chaos.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_chaos.json"))
    base_engine = _load("BENCH_engine.json")
    base_sweep = _load("BENCH_sweep.json")
    base_scale = _load("BENCH_scale.json")
    base_shard = _load("BENCH_shard.json")
    base_controller = _load("BENCH_controller.json")
    base_chaos = _load("BENCH_chaos.json")

    # (label, baseline, fresh) — all higher-is-better throughputs.
    checks = [
        ("engine flood events/s",
         _dig(base_engine, "BENCH_engine.json", "workloads",
              "flood_grid4x4", "events_per_sec"),
         fresh_engine["workloads"]["flood_grid4x4"]["events_per_sec"]),
        ("wheel churn rounds/s",
         1.0 / _dig(base_engine, "BENCH_engine.json", "workloads",
                    "timer_churn_wheel", "wall_seconds"),
         1.0 / fresh_engine["workloads"]["timer_churn_wheel"]
         ["wall_seconds"]),
        ("sweep jobs=1 cells/s",
         _dig(base_sweep, "BENCH_sweep.json", "jobs_1", "cells_per_sec"),
         fresh_sweep["jobs_1"]["cells_per_sec"]),
        ("chaos pool fault-free cells/s",
         _dig(base_chaos, "BENCH_chaos.json", "fault_free",
              "cells_per_sec"),
         fresh_chaos["fault_free"]["cells_per_sec"]),
    ]
    # (label, baseline, fresh) — lower-is-better efficiency metrics:
    # the tolerance check is inverted (fail when fresh RISES past the
    # allowance). events/payload is deterministic, so any growth is an
    # event-count regression in the dataplane fast path, not noise.
    inverted_checks = []
    for n in bench_scale.SIZES:
        workload = f"flood_grid_n{n}"
        checks.append((
            f"scale n={n} events/s",
            _dig(base_scale, "BENCH_scale.json", "workloads", workload,
                 "events_per_sec"),
            fresh_scale["workloads"][workload]["events_per_sec"]))
        inverted_checks.append((
            f"scale n={n} events/payload",
            _dig(base_scale, "BENCH_scale.json", "workloads", workload,
                 "events_per_payload"),
            fresh_scale["workloads"][workload]["events_per_payload"]))
    # Population workloads: endpoint count must stay decoupled from the
    # engine's cost — deliveries/s is wall-noisy (40% floor), while
    # events/payload and the per-endpoint pending quotient are
    # deterministic and get the tight ceiling.
    for endpoints in bench_scale.POPULATION_ENDPOINTS:
        workload = (f"population_grid_n{bench_scale.POPULATION_N}"
                    f"_e{endpoints}")
        checks.append((
            f"population e={endpoints} deliveries/s",
            _dig(base_scale, "BENCH_scale.json", "workloads", workload,
                 "deliveries_per_sec"),
            fresh_scale["workloads"][workload]["deliveries_per_sec"]))
        inverted_checks.append((
            f"population e={endpoints} events/payload",
            _dig(base_scale, "BENCH_scale.json", "workloads", workload,
                 "events_per_payload"),
            fresh_scale["workloads"][workload]["events_per_payload"]))
    # Sharded engine: the K=1 degenerate path is wall-noisy like every
    # other throughput here (40% floor); the multi-shard figures are
    # machine-shaped (protocol overhead on one core, speedup on many),
    # so they only compare against a baseline from the same CPU count —
    # the BENCH_sweep.json convention for its parallel-pool numbers.
    checks.append((
        "shard K=1 deliveries/s",
        _dig(base_shard, "BENCH_shard.json", "shards_1",
             "deliveries_per_sec"),
        fresh_shard["shards_1"]["deliveries_per_sec"]))
    shard_baseline_cpus = _dig(base_shard, "BENCH_shard.json", "cpus")
    if fresh_shard["cpus"] == shard_baseline_cpus:
        for shards in bench_shard.SHARD_COUNTS[1:]:
            checks.append((
                f"shard K={shards} deliveries/s",
                _dig(base_shard, "BENCH_shard.json", f"shards_{shards}",
                     "deliveries_per_sec"),
                fresh_shard[f"shards_{shards}"]["deliveries_per_sec"]))
    else:
        print(f"note: skipping multi-shard checks (baseline cpus="
              f"{shard_baseline_cpus}, here {fresh_shard['cpus']})")
    # Controller-family repair figures are *simulated* time, fully
    # deterministic (see bench_controller.py), so both sides get the
    # tight efficiency ceiling: any growth is a control-plane protocol
    # regression (an extra round trip, a lost barrier), never noise.
    for family in ("arppath", "controller"):
        inverted_checks.append((
            f"{family} fig3 worst outage ms",
            _dig(base_controller, "BENCH_controller.json", family,
                 "worst_outage_ms"),
            fresh_controller[family]["worst_outage_ms"]))
    inverted_checks.append((
        "controller repair latency s",
        _dig(base_controller, "BENCH_controller.json", "controller",
             "repair_latency_s_max"),
        fresh_controller["controller"]["repair_latency_s_max"]))

    baseline_cpus = _dig(base_sweep, "BENCH_sweep.json", "cpus")
    if fresh_sweep["cpus"] == baseline_cpus:
        jobs_key = next((k for k in base_sweep if k.startswith("jobs_")
                         and k != "jobs_1"), None)
        if jobs_key is None:
            raise BaselineKeyMissing("BENCH_sweep.json", "jobs_<N>")
        checks.append((f"sweep {jobs_key} cells/s",
                       _dig(base_sweep, "BENCH_sweep.json", jobs_key,
                            "cells_per_sec"),
                       fresh_sweep[jobs_key]["cells_per_sec"]))
    else:
        print(f"note: skipping parallel sweep check (baseline cpus="
              f"{baseline_cpus}, here {fresh_sweep['cpus']})")

    failed = []
    floor = 1.0 - args.tolerance
    for label, baseline, fresh in checks:
        ratio = fresh / baseline
        verdict = "ok" if ratio >= floor else "REGRESSION"
        if ratio < floor:
            failed.append((label, baseline, fresh, ratio,
                           f"< floor {floor:.2f}"))
        print(f"{label:28s} baseline {baseline:12.1f}  "
              f"fresh {fresh:12.1f}  ratio {ratio:5.2f}  {verdict}")
    # Efficiency metrics are deterministic (event counts, not wall
    # clocks), so they get a tight fixed ceiling instead of the noise
    # tolerance: any real growth is an event-count regression that a
    # deliberate change must re-record, never drift to wave through.
    ceiling = 1.0 + EFFICIENCY_TOLERANCE
    for label, baseline, fresh in inverted_checks:
        ratio = fresh / baseline
        verdict = "ok" if ratio <= ceiling else "REGRESSION"
        if ratio > ceiling:
            failed.append((label, baseline, fresh, ratio,
                           f"> ceiling {ceiling:.2f}"))
        # %g, not the throughput table's %.1f: these are ~1.3-value
        # ratios where one decimal would print equal-looking numbers
        # beside a REGRESSION verdict.
        print(f"{label:28s} baseline {baseline:>12g}  "
              f"fresh {fresh:>12g}  ratio {ratio:5.3f}  {verdict} "
              f"(lower is better)")
    if failed:
        print(f"FAIL: {len(failed)} workload(s) regressed past their "
              f"recorded baseline (throughput floor {floor:.2f}x, "
              f"efficiency ceiling {ceiling:.2f}x):")
        for label, baseline, fresh, ratio, bound in failed:
            print(f"  {label}: recorded {baseline:g}, fresh "
                  f"{fresh:g} -> ratio {ratio:.3f} {bound}")
        return 1
    print(f"all checks within {args.tolerance:.0%} of baseline "
          f"(cpus here: {multiprocessing.cpu_count()})")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (BaselineFileMissing, BaselineKeyMissing) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        sys.exit(2)
