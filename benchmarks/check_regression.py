"""Bench regression guard: fresh numbers vs the checked-in baselines.

Re-measures the engine (``bench_timerwheel.regenerate_baseline``) and
sweep-runner (``bench_sweep.regenerate_baseline``) benchmarks, writes
the fresh JSON next to ``--out-dir`` (CI uploads it as an artifact),
and compares the throughput figures against ``BENCH_engine.json`` /
``BENCH_sweep.json`` with a generous noise tolerance.

Per the bench-noise protocol, wall-clock numbers on shared runners are
noisy (easily ±30-40%), so the guard only fails on a drop larger than
``--tolerance`` (default 40%) — it catches order-of-magnitude
regressions (an accidentally quadratic hot path), not percent-level
drift. Parallel sweep figures are only compared when the runner has
the same CPU count the baseline was recorded on.

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/check_regression.py --out-dir fresh

Exit status 0 = within tolerance, 1 = regression.
"""

import argparse
import json
import multiprocessing
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
sys.path.insert(0, HERE)

import bench_sweep  # noqa: E402  (path set up above)
import bench_timerwheel  # noqa: E402


def _load(name):
    with open(os.path.join(HERE, name)) as handle:
        return json.load(handle)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare fresh bench numbers against the baselines")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional throughput drop "
                             "(default 0.40 = 40%%)")
    parser.add_argument("--out-dir", default="bench-fresh",
                        help="directory for the freshly measured JSON")
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    fresh_engine = bench_timerwheel.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_engine.json"))
    fresh_sweep = bench_sweep.regenerate_baseline(
        os.path.join(args.out_dir, "BENCH_sweep.json"))
    base_engine = _load("BENCH_engine.json")
    base_sweep = _load("BENCH_sweep.json")

    # (label, baseline, fresh) — all higher-is-better throughputs.
    checks = [
        ("engine flood events/s",
         base_engine["workloads"]["flood_grid4x4"]["events_per_sec"],
         fresh_engine["workloads"]["flood_grid4x4"]["events_per_sec"]),
        ("wheel churn rounds/s",
         1.0 / base_engine["workloads"]["timer_churn_wheel"]
         ["wall_seconds"],
         1.0 / fresh_engine["workloads"]["timer_churn_wheel"]
         ["wall_seconds"]),
        ("sweep jobs=1 cells/s",
         base_sweep["jobs_1"]["cells_per_sec"],
         fresh_sweep["jobs_1"]["cells_per_sec"]),
    ]
    if fresh_sweep["cpus"] == base_sweep["cpus"]:
        jobs_key = next(k for k in base_sweep if k.startswith("jobs_")
                        and k != "jobs_1")
        checks.append((f"sweep {jobs_key} cells/s",
                       base_sweep[jobs_key]["cells_per_sec"],
                       fresh_sweep[jobs_key]["cells_per_sec"]))
    else:
        print(f"note: skipping parallel sweep check (baseline cpus="
              f"{base_sweep['cpus']}, here {fresh_sweep['cpus']})")

    failed = False
    floor = 1.0 - args.tolerance
    for label, baseline, fresh in checks:
        ratio = fresh / baseline
        verdict = "ok" if ratio >= floor else "REGRESSION"
        failed |= ratio < floor
        print(f"{label:28s} baseline {baseline:12.1f}  "
              f"fresh {fresh:12.1f}  ratio {ratio:5.2f}  {verdict}")
    if failed:
        print(f"FAIL: throughput dropped more than "
              f"{args.tolerance:.0%} below baseline")
        return 1
    print(f"all checks within {args.tolerance:.0%} of baseline "
          f"(cpus here: {multiprocessing.cpu_count()})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
