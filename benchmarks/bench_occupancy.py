"""EXP-S1 bench: per-bridge state vs hosts and traffic density.

Paper context (§2.2 "Scalability"): ARP-Path bridges hold one table
entry per active conversation endpoint, learnt on demand; a link-state
bridge stores the full topology plus every advertised host regardless
of who is talking.

Expected shape: ARP-Path state tracks the *traffic matrix* (sparse
traffic ⇒ small tables even with many hosts); SPB state tracks the
*network* (grows with hosts whether or not they talk).
"""

from conftest import banner, run_once

from repro.experiments import registry


def test_state_scaling(benchmark):
    result = run_once(benchmark, lambda: registry.get("occupancy").execute(
        host_counts=[1, 2, 4], sparse_pairs=4))
    banner("EXP-S1 — per-bridge state vs hosts (4-bridge ring)")
    print(result.table())
    arp_dense = [r for r in result.rows
                 if r.protocol == "arppath" and "sparse" not in r.protocol]
    arp_sparse = [r for r in result.rows if r.protocol == "arppath (sparse)"]
    spb_rows = [r for r in result.rows if r.protocol == "spb"]
    # Sparse traffic keeps ARP-Path tables small at any host count.
    if arp_sparse:
        biggest_sparse = max(r.peak_entries_per_bridge for r in arp_sparse)
        assert biggest_sparse <= 2 * 4 + 2  # ~both endpoints of 4 pairs
    # SPB state grows with hosts even for identical traffic.
    assert spb_rows[-1].peak_entries_per_bridge \
        > spb_rows[0].peak_entries_per_bridge
