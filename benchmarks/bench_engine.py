"""EXP-E1: simulator micro-benchmarks (supporting, not from the paper).

Calibrates the substrate: event throughput, flood fan-out cost and the
cost of one full ARP race on the demo topology. These use normal
multi-round timing (the numbers are wall-clock performance, not
simulated results).
"""

from repro.frames.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.frames.mac import mac_for_host
from repro.netsim.engine import Simulator
from repro.topology import arppath, grid, netfpga_demo


def test_event_throughput(benchmark):
    """Schedule+fire cost of bare simulator events."""

    def burn():
        sim = Simulator(seed=0, keep_trace_records=False)
        for _ in range(10_000):
            sim.schedule(1.0, lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(burn)
    assert events == 10_000


def test_arp_race_cost(benchmark):
    """One full ARP exchange (race + reply) on the demo topology."""

    def race():
        sim = Simulator(seed=0, keep_trace_records=False)
        net = netfpga_demo(sim, arppath())
        net.run(2.0)
        rtts = []
        net.host("A").ping(net.host("B").ip,
                           on_reply=lambda s, r: rtts.append(r))
        net.run(1.0)
        return len(rtts)

    answered = benchmark(race)
    assert answered == 1


def test_flood_fanout_cost(benchmark):
    """Broadcast storm-free flood over a 4x4 grid fabric."""

    def flood():
        sim = Simulator(seed=0, keep_trace_records=False)
        net = grid(sim, arppath(), 4, 4, hosts_at_corners=True)
        net.run(2.0)
        net.host("H0").gratuitous_arp()
        net.run(1.0)
        return sim.tracer.frames_sent

    sent = benchmark(flood)
    assert sent > 0


def test_sustained_stream_cost(benchmark):
    """1000 UDP datagrams across an established 3-bridge path."""
    from repro.topology import line

    def stream():
        sim = Simulator(seed=0, keep_trace_records=False)
        net = line(sim, arppath(), 3)
        net.run(2.0)
        h0, h1 = net.host("H0"), net.host("H1")
        got = []
        h1.bind_udp(9, lambda sip, sp, p, pkt: got.append(1))
        h0.send_udp(h1.ip, 9, 9, b"prime")
        net.run(1.0)
        # 10 us spacing keeps the sender under line rate; the whole
        # train is injected in one schedule_bulk batch (one heapify).
        sim.schedule_bulk((index * 10e-6, h0.send_udp, h1.ip, 9, 9,
                           b"x" * 200) for index in range(1000))
        net.run(1.0)
        return len(got)

    delivered = benchmark(stream)
    assert delivered == 1001
