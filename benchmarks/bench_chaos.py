"""EXP-E6: fault-tolerance overhead and recovery latency (supporting).

Two questions the PR-10 execution-robustness layer must answer with
numbers, not vibes:

1. **What does crash isolation cost when nothing crashes?** The
   crash-isolated pool (per-worker result pipes, liveness reaping,
   retry bookkeeping) runs on every parallel sweep. ``fault_free``
   measures cells/second of a proxy grid at ``jobs=2`` with a retry
   budget armed but no faults injected — the steady-state tax.
2. **How fast is recovery when a worker dies?** ``kill_recovery``
   runs the same grid with a seeded ``KillWorker`` fault (one worker
   ``os._exit`` mid-cell) and one retry: the wall time covers
   detecting the corpse, respawning a worker and re-running the cell,
   and the run must still end ``report.ok`` with every row intact.

Run with ``pytest benchmarks/bench_chaos.py --benchmark-only``.

``python benchmarks/bench_chaos.py`` re-measures and rewrites
``benchmarks/BENCH_chaos.json``. Wall numbers are single-machine
noisy (see the bench-noise protocol in check_regression.py); the
regression guard only compares the fault-free throughput.
"""

import multiprocessing
import time

from repro.chaos.faults import KillWorker
from repro.experiments import registry, runner

#: Eight cells of the tiny proxy case: enough to keep a 2-worker pool
#: busy on both sides of an injected crash, cheap enough for CI.
SEEDS = list(range(8))
JOBS = 2


def proxy_cells():
    registry.load_all()
    return runner.expand_grid(
        ["proxy"], seeds=SEEDS,
        axes={"rows": [2], "cols": [2], "rounds": [1]})


def run_fault_free() -> runner.SweepReport:
    return runner.SweepRunner(proxy_cells(), jobs=JOBS, retries=1).run()


def run_kill_recovery() -> runner.SweepReport:
    hook = KillWorker(cell_index=3, kills=1)
    return runner.SweepRunner(proxy_cells(), jobs=JOBS, retries=1,
                              cell_hook=hook).run()


def test_fault_free_throughput(benchmark):
    report = benchmark.pedantic(run_fault_free, rounds=1, iterations=1)
    assert report.ok and len(report.cells) == len(SEEDS)
    assert not report.retried


def test_kill_recovery(benchmark):
    report = benchmark.pedantic(run_kill_recovery, rounds=1,
                                iterations=1)
    assert report.ok
    assert {r.cell.index for r in report.retried} == {3}


def _measure(fn, rounds: int = 3) -> float:
    """Best wall-clock seconds over *rounds* runs (after one warm-up)."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def regenerate_baseline(path: str = None) -> dict:
    """Measure fault-tolerance overhead and write BENCH_chaos.json."""
    import os

    from repro.metrics.report import write_json

    if path is None:
        path = os.path.join(os.path.dirname(__file__),
                            "BENCH_chaos.json")

    cells = len(proxy_cells())
    fault_free_dt = _measure(run_fault_free)
    recovery_dt = _measure(run_kill_recovery)
    baseline = {
        "grid": {
            "description": "sweep proxy --seeds 0..7 --set rows=2 "
                           "cols=2 rounds=1 at jobs=2, retry budget 1",
            "cells": cells,
        },
        "cpus": multiprocessing.cpu_count(),
        "fault_free": {
            "wall_seconds": round(fault_free_dt, 6),
            "cells_per_sec": round(cells / fault_free_dt, 3),
        },
        "kill_recovery": {
            "wall_seconds": round(recovery_dt, 6),
            "cells_per_sec": round(cells / recovery_dt, 3),
            "recovery_overhead_seconds": round(
                max(0.0, recovery_dt - fault_free_dt), 6),
        },
    }
    write_json(path, baseline)
    return baseline


if __name__ == "__main__":
    import json

    print(json.dumps(regenerate_baseline(), indent=2, sort_keys=True))
